"""Unit + property tests for the §4 synthetic stream generator."""

import pytest
from hypothesis import given, strategies as st

from repro.common import AddressSpace, ConfigError
from repro.isa import ILP, Instr, Op, StreamSpec, STREAM_OPS, make_stream


def collect(name, ilp=ILP.MAX, count=100, region=None, stride=2):
    spec = StreamSpec(name, ilp=ilp, count=count, stride=stride)
    return list(make_stream(spec, region))


class TestArithStreams:
    def test_count(self):
        assert len(collect("fadd", count=37)) == 37

    def test_homogeneous_opcode(self):
        assert all(i.op == Op.FMUL for i in collect("fmul"))

    def test_fadd_mul_alternates_circularly(self):
        ops = [i.op for i in collect("fadd-mul", count=6)]
        assert ops == [Op.FADD, Op.FMUL] * 3

    @pytest.mark.parametrize("ilp", list(ILP))
    def test_target_rotation_matches_ilp(self, ilp):
        instrs = collect("fadd", ilp=ilp, count=24)
        targets = {i.dst for i in instrs}
        assert len(targets) == ilp.num_targets
        # A target register is reused exactly every |T| instructions.
        for k, instr in enumerate(instrs):
            assert instr.dst == instrs[k % ilp.num_targets].dst

    @pytest.mark.parametrize("ilp", list(ILP))
    def test_source_and_target_sets_disjoint(self, ilp):
        """The paper keeps S and T disjoint so only chain hazards remain."""
        instrs = collect("iadd", ilp=ilp, count=50)
        targets = {i.dst for i in instrs}
        pure_sources = set()
        for i in instrs:
            pure_sources.update(s for s in i.srcs if s != i.dst)
        assert targets.isdisjoint(pure_sources)

    def test_min_ilp_is_single_chain(self):
        instrs = collect("fadd", ilp=ILP.MIN, count=10)
        # Every instruction reads the register written by its predecessor.
        for prev, cur in zip(instrs, instrs[1:]):
            assert prev.dst in cur.srcs


class TestMemoryStreams:
    @pytest.fixture
    def region(self):
        return AddressSpace().alloc("vec", 1 << 12, elem_size=2)

    def test_memory_stream_requires_region(self):
        with pytest.raises(ConfigError):
            collect("iload")

    def test_sequential_traversal(self, region):
        instrs = collect("iload", count=10, region=region, stride=2)
        addrs = [i.addr for i in instrs]
        assert addrs == [region.base + 2 * k for k in range(10)]

    def test_wraparound(self, region):
        n = region.nbytes // 2 + 5
        instrs = collect("fload", count=n, region=region, stride=2)
        assert instrs[-1].addr < region.end
        assert instrs[region.nbytes // 2].addr == region.base

    def test_store_stream_has_no_dest(self, region):
        instrs = collect("istore", count=5, region=region)
        assert all(i.dst is None for i in instrs)
        assert all(i.op == Op.ISTORE for i in instrs)

    def test_miss_rate_from_stride(self, region):
        """stride/line = expected fraction of accesses touching a new line."""
        instrs = collect("fload", count=1024, region=region, stride=1)
        lines = {i.addr // 32 for i in instrs}
        assert len(lines) / len(instrs) == pytest.approx(1 / 32, rel=0.1)


class TestSpecValidation:
    def test_unknown_stream(self):
        with pytest.raises(ConfigError):
            StreamSpec("bogus")

    def test_all_declared_streams_constructible(self):
        aspace = AddressSpace()
        region = aspace.alloc("v", 4096, elem_size=2)
        for name in STREAM_OPS:
            instrs = collect(name, count=12, region=region)
            assert len(instrs) == 12

    def test_bad_count(self):
        with pytest.raises(ConfigError):
            StreamSpec("fadd", count=0)

    def test_bad_stride(self):
        with pytest.raises(ConfigError):
            StreamSpec("iload", stride=0)


@given(
    name=st.sampled_from(sorted(STREAM_OPS)),
    ilp=st.sampled_from(list(ILP)),
    count=st.integers(min_value=1, max_value=300),
)
def test_stream_properties(name, ilp, count):
    """Property: any spec yields exactly `count` well-formed µops."""
    region = AddressSpace().alloc("v", 1 << 14, elem_size=2)
    spec = StreamSpec(name, ilp=ilp, count=count)
    instrs = list(make_stream(spec, region))
    assert len(instrs) == count
    for i in instrs:
        assert isinstance(i, Instr)
        ok_ops = set(STREAM_OPS[name])
        assert i.op in ok_ops
        if i.addr is not None:
            assert region.contains(i.addr)
