"""Unit tests for the Instr µop record."""

import pytest

from repro.isa import Instr, Op, R, F


class TestConstruction:
    def test_arith_is_two_operand(self):
        i = Instr.arith(Op.FADD, dst=F(0), src=F(8))
        assert i.dst == F(0)
        # x86 two-operand semantics: the destination is also a source.
        assert F(0) in i.srcs and F(8) in i.srcs

    def test_load_requires_address(self):
        with pytest.raises(ValueError):
            Instr(Op.FLOAD, dst=F(0))

    def test_store_requires_address(self):
        with pytest.raises(ValueError):
            Instr(Op.ISTORE, srcs=(R(0),))

    def test_arith_requires_destination(self):
        with pytest.raises(ValueError):
            Instr(Op.IADD, srcs=(R(0),))

    def test_branch_pause_halt_need_no_destination(self):
        for op in (Op.BRANCH, Op.PAUSE, Op.HALT, Op.NOP):
            Instr(op)  # must not raise

    def test_store_constructor(self):
        s = Instr.store(0x1000, src=F(2))
        assert s.addr == 0x1000
        assert s.srcs == (F(2),)
        assert s.dst is None

    def test_store_without_data_dep(self):
        s = Instr.store(0x40, op=Op.ISTORE)
        assert s.srcs == ()

    def test_load_with_address_deps(self):
        ld = Instr.load(0x2000, dst=F(1), srcs=(R(3),))
        assert ld.srcs == (R(3),)

    def test_effect_stored(self):
        fired = []
        i = Instr(Op.NOP, effect=lambda: fired.append(1))
        i.effect()
        assert fired == [1]

    def test_repr_smoke(self):
        assert "FADD" in repr(Instr.arith(Op.FADD, dst=F(0), src=F(8)))


class TestRegisters:
    def test_int_fp_disjoint(self):
        assert R(0) != F(0)
        assert len({R(i) for i in range(8)} | {F(i) for i in range(8)}) == 16

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            R(99)
        with pytest.raises(ValueError):
            F(-1)
