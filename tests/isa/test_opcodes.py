"""Tests for the opcode taxonomy."""

from repro.isa import Op, SubUnit, OP_SUBUNIT, is_fp, is_load, is_mem, is_store


class TestTaxonomy:
    def test_every_opcode_classified(self):
        assert set(OP_SUBUNIT) == set(Op)

    def test_loads(self):
        assert is_load(Op.ILOAD) and is_load(Op.FLOAD)
        assert not is_load(Op.ISTORE)
        assert not is_load(Op.PREFETCH)  # non-binding: no LQ entry

    def test_stores(self):
        assert is_store(Op.ISTORE) and is_store(Op.FSTORE)
        assert not is_store(Op.FLOAD)

    def test_mem(self):
        for op in (Op.ILOAD, Op.FLOAD, Op.ISTORE, Op.FSTORE):
            assert is_mem(op)
        assert not is_mem(Op.FADD)

    def test_fp_classification(self):
        for op in (Op.FADD, Op.FSUB, Op.FMUL, Op.FDIV, Op.FMOVE,
                   Op.FLOAD, Op.FSTORE):
            assert is_fp(op)
        for op in (Op.IADD, Op.ILOGIC, Op.ILOAD, Op.BRANCH):
            assert not is_fp(op)

    def test_table1_subunits(self):
        """The Table-1 buckets the paper reports."""
        assert OP_SUBUNIT[Op.IADD] is SubUnit.ALUS
        assert OP_SUBUNIT[Op.ILOGIC] is SubUnit.ALUS
        assert OP_SUBUNIT[Op.FADD] is SubUnit.FP_ADD
        assert OP_SUBUNIT[Op.FSUB] is SubUnit.FP_ADD
        assert OP_SUBUNIT[Op.FMUL] is SubUnit.FP_MUL
        assert OP_SUBUNIT[Op.FMOVE] is SubUnit.FP_MOVE
        assert OP_SUBUNIT[Op.FLOAD] is SubUnit.LOAD
        assert OP_SUBUNIT[Op.FSTORE] is SubUnit.STORE

    def test_sync_ops_are_other(self):
        """Sync/power instructions are excluded from Table-1 mixes."""
        for op in (Op.NOP, Op.PAUSE, Op.HALT):
            assert OP_SUBUNIT[op] is SubUnit.OTHER
