"""Compiled traces must be indistinguishable from the stream generators.

``compile_stream`` exists purely as a faster encoding of
``make_stream``: the exactness contract is byte-for-byte equality of
the emitted instruction sequence — opcode, destination, source list,
address and site, in order, for every stream, ILP level and count.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.addrspace import AddressSpace
from repro.common.errors import ConfigError
from repro.isa.instr import Instr
from repro.isa.opcodes import Op
from repro.isa.streams import STREAM_OPS, ILP, StreamSpec, make_stream
from repro.isa.trace import (ChainedSource, CompiledTrace, OneShot,
                             compile_stream)


def _fields(ins):
    return (ins.op, ins.dst, ins.srcs, ins.addr, ins.site)


def _spec_region(name, ilp, count, stride=1, site=0):
    spec = StreamSpec(name, ilp=ilp, count=count, stride=stride, site=site)
    region = None
    if spec.is_memory:
        region = AddressSpace().alloc("vec", 4096, elem_size=1)
    return spec, region


@pytest.mark.parametrize("name", sorted(STREAM_OPS))
@pytest.mark.parametrize("ilp", list(ILP))
def test_compiled_equals_generator_all_streams(name, ilp):
    spec, region = _spec_region(name, ilp, count=300)
    compiled = [_fields(i) for i in compile_stream(spec, region)]
    generated = [_fields(i) for i in make_stream(spec, region)]
    assert compiled == generated


@settings(max_examples=60, deadline=None)
@given(
    name=st.sampled_from(sorted(STREAM_OPS)),
    ilp=st.sampled_from(list(ILP)),
    count=st.integers(1, 700),
    stride=st.integers(1, 96),
    site=st.integers(0, 5),
)
def test_compiled_equals_generator_property(name, ilp, count, stride, site):
    spec, region = _spec_region(name, ilp, count, stride=stride, site=site)
    compiled = [_fields(i) for i in compile_stream(spec, region)]
    generated = [_fields(i) for i in make_stream(spec, region)]
    assert compiled == generated


@settings(max_examples=40, deadline=None)
@given(
    name=st.sampled_from(sorted(STREAM_OPS)),
    count=st.integers(1, 400),
    sizes=st.lists(st.integers(1, 64), min_size=1, max_size=12),
)
def test_take_batches_concatenate_to_the_full_stream(name, count, sizes):
    """Any batching of take() yields the same sequence as iteration,
    and an empty batch marks exhaustion exactly at ``count``."""
    spec, region = _spec_region(name, ILP.MAX, count)
    whole = [_fields(i) for i in compile_stream(spec, region)]
    trace = compile_stream(spec, region)
    got = []
    idx = 0
    while True:
        n = sizes[idx % len(sizes)]
        idx += 1
        batch = trace.take(n)
        if not batch:
            break
        assert len(batch) <= n
        got.extend(_fields(i) for i in batch)
    assert got == whole
    assert trace.take(5) == []


def test_skip_is_equivalent_to_consuming():
    spec, region = _spec_region("iload", ILP.MAX, 500)
    a = compile_stream(spec, region)
    b = compile_stream(spec, region)
    for _ in range(123):
        next(b)
    a.skip(123)
    assert a.pos == b.pos and a.offset == b.offset
    assert [_fields(i) for i in a] == [_fields(i) for i in b]


def test_skip_past_end_rejected():
    spec, _ = _spec_region("iadd", ILP.MAX, 10)
    trace = compile_stream(spec)
    trace.skip(10)
    with pytest.raises(ConfigError):
        trace.skip(1)
    with pytest.raises(ConfigError):
        compile_stream(spec).skip(-1)


def test_gate_ops_rejected_in_patterns():
    with pytest.raises(ConfigError):
        CompiledTrace([(Op.PAUSE, None, ())], count=1)
    with pytest.raises(ConfigError):
        CompiledTrace([(Op.HALT, None, ())], count=1)


def test_chained_source_splices_parts_in_order():
    spec_a, _ = _spec_region("iadd", ILP.MAX, 7)
    spec_b, _ = _spec_region("fadd", ILP.MAX, 5)
    marker = Instr(Op.NOP, site=99)
    chain = ChainedSource([compile_stream(spec_a), OneShot(marker),
                           compile_stream(spec_b)])
    seq = [_fields(i) for i in chain]
    expect = ([_fields(i) for i in compile_stream(spec_a)]
              + [_fields(marker)]
              + [_fields(i) for i in compile_stream(spec_b)])
    assert seq == expect


def test_chained_take_isolates_non_trace_parts():
    """take() batches inside compiled traces but hands a OneShot over
    alone — the length-1 batch rule the core's fetch loop relies on."""
    spec_a, _ = _spec_region("iadd", ILP.MAX, 6)
    marker = Instr(Op.NOP, site=7)
    spec_b, _ = _spec_region("imul", ILP.MAX, 4)
    chain = ChainedSource([compile_stream(spec_a), OneShot(marker),
                           compile_stream(spec_b)])
    batches = []
    while True:
        batch = chain.take(4)
        if not batch:
            break
        batches.append([_fields(i) for i in batch])
    assert [len(b) for b in batches] == [4, 2, 1, 4]
    assert batches[2] == [_fields(marker)]


def test_active_trace_tracks_the_feeding_part():
    spec_a, _ = _spec_region("iadd", ILP.MAX, 3)
    marker = Instr(Op.NOP)
    spec_b, _ = _spec_region("imul", ILP.MAX, 2)
    chain = ChainedSource([compile_stream(spec_a), OneShot(marker),
                           compile_stream(spec_b)])
    idx, trace = chain.active_trace()
    assert idx == 0 and trace.pattern[0][0] is Op.IADD
    for _ in range(3):
        next(chain)
    assert chain.active_trace() is None      # marker pending
    next(chain)                              # consume the marker
    idx, trace = chain.active_trace()
    assert idx == 2 and trace.pattern[0][0] is Op.IMUL
    list(chain)
    assert chain.active_trace() is None      # exhausted
