"""Phase-marker tags: signature widening for multi-sweep workloads.

A ``PhaseMarker`` carries an integer ``tag`` that widens the recorded
phase signature: :func:`compile_tiled` dedups patterns under
``(tag, pattern)``, so identical instruction rows recorded in
differently-tagged phases stay distinct pattern ids and the recurrence
machinery can never pair captures across a signature boundary.  BT is
the motivating case — its three directional sweeps touch the grid
through different strides, and untagged recording let x-sweep lines
alias with y-sweep lines whenever their relative rows coincided.
"""

from repro.common.addrspace import AddressSpace
from repro.isa import F, Instr, Op
from repro.isa.trace import PHASE, PhaseMarker, compile_tiled
from repro.pintool import DryRunAPI
from repro.workloads import bt
from repro.workloads.common import Variant


def _region():
    return AddressSpace().alloc("a", 4096)


def _line(region, base_off=0):
    yield Instr.load(region.base + base_off, dst=F(0))
    yield Instr.arith(Op.FADD, dst=F(1), src=F(0))


class TestMarkerSemantics:
    def test_shared_marker_carries_tag_zero(self):
        assert PHASE.tag == 0
        assert PhaseMarker().tag == 0

    def test_custom_tag_is_preserved(self):
        assert PhaseMarker(2).tag == 2

    def test_markers_are_not_instructions(self):
        region = _region()

        def gen():
            yield PhaseMarker(1)
            yield from _line(region)
            yield PhaseMarker(2)
            yield from _line(region)

        trace = compile_tiled(gen(), [region])
        assert trace.count == 4          # two 2-instruction lines


class TestTaggedDeduplication:
    def test_same_pattern_same_tag_collapses(self):
        region = _region()

        def gen():
            for _ in range(3):
                yield PHASE
                yield from _line(region)

        trace = compile_tiled(gen(), [region])
        assert len(trace.phases) == 3
        assert len(trace.patterns) == 1

    def test_same_pattern_distinct_tags_stay_distinct(self):
        region = _region()

        def gen():
            for tag in (0, 1, 0, 1):
                yield PhaseMarker(tag)
                yield from _line(region)

        trace = compile_tiled(gen(), [region])
        assert len(trace.phases) == 4
        assert len(trace.patterns) == 2

    def test_instructions_before_any_marker_carry_tag_zero(self):
        region = _region()

        def gen():
            yield from _line(region)     # implicit leading tag 0
            yield PHASE                  # tag 0 again
            yield from _line(region)
            yield PhaseMarker(1)
            yield from _line(region)

        trace = compile_tiled(gen(), [region])
        assert len(trace.phases) == 3
        assert len(trace.patterns) == 2


class TestBTDirectionalSignature:
    """The measured regression satellite: tagging BT's sweeps by
    direction keeps the three directional line patterns distinct, and
    the serial trace *stays* recurrent — two per-direction windows,
    each confined to a single sweep, never pairing across the
    direction boundary where the reference deltas change stride."""

    def test_bt_serial_stays_recurrent_with_per_direction_windows(self):
        build = bt.build(Variant.SERIAL, grid=8)
        trace = build.factories[0](DryRunAPI())
        assert len(trace.patterns) == 3      # one pattern per direction
        nlines = len(trace.phases) // 3      # phases per sweep

        cert = trace.cert
        assert cert is not None
        assert cert.verdict == "recurrent"
        assert len(cert.windows) == 2
        for w in cert.windows:
            assert w.start // nlines == w.end // nlines, (
                "a recurrence window paired across a sweep boundary")
