"""Focused behavioural tests of individual core mechanisms."""

from repro.cpu import CoreConfig, SMTCore
from repro.isa import Instr, Op, F, R
from repro.mem import MemConfig, MemoryHierarchy
from repro.perfmon import Event, PerfMonitor


def make_core(config=None, mem=None):
    cfg = config or CoreConfig()
    mon = PerfMonitor(cfg.num_threads)
    hier = MemoryHierarchy(mem or MemConfig(), mon, cfg.num_threads)
    return SMTCore(cfg, hier, mon)


def iadds(n, ilp=6):
    return [Instr.arith(Op.IADD, dst=R(i % ilp), src=R(8)) for i in range(n)]


class TestRetirementOrder:
    def test_effects_fire_in_program_order_for_stores(self):
        """Store effects fire at retirement, which is in order — so a
        thread's store effects observe program order."""
        order = []
        core = make_core()
        instrs = []
        for k in range(20):
            instrs.append(
                Instr.store(0x1000 + 32 * k, src=F(0), op=Op.FSTORE,
                            effect=lambda k=k: order.append(k))
            )
        core.add_thread(iter(instrs))
        core.run()
        assert order == list(range(20))

    def test_fast_uop_waits_behind_slow_one(self):
        """In-order retirement: an iadd after an fdiv retires after it."""
        order = []
        core = make_core()
        core.add_thread(iter([
            Instr(Op.FDIV, dst=F(0), srcs=(F(0),),
                  effect=lambda: order.append("fdiv-complete")),
            Instr.store(0x40, src=F(1), op=Op.FSTORE,
                        effect=lambda: order.append("store-retired")),
        ]))
        core.run()
        assert order == ["fdiv-complete", "store-retired"]


class TestFrontEndSharing:
    def test_uopq_capacity_limits_fetch_runahead(self):
        """A stalled thread cannot fetch unboundedly far ahead."""
        cfg = CoreConfig()
        core = make_core(cfg)
        # One fdiv chain (slow) followed by many iadds: the queue fills.
        instrs = [Instr(Op.FDIV, dst=F(0), srcs=(F(0),)) for _ in range(4)]
        instrs += iadds(500)
        core.add_thread(iter(instrs))
        core.add_thread(iter(iadds(5)))

        fetched_early = []

        orig_fetch = SMTCore._fetch

        def spy(self, t):
            orig_fetch(self, t)
            if t == 100:
                fetched_early.append(self.threads[0].uops_fetched)

        SMTCore._fetch = spy
        try:
            core.run()
        finally:
            SMTCore._fetch = orig_fetch
        # At tick 100 the fdivs are still blocking retirement; fetch can
        # run ahead by at most ROB + µop-queue capacity (the structural
        # window), never unboundedly.
        limit = cfg.rob_total + cfg.uopq_total + 10
        assert fetched_early and fetched_early[0] <= limit

    def test_pause_frees_slots_for_sibling(self):
        """A pausing thread costs its sibling almost nothing."""
        n = 20_000
        solo = make_core()
        solo.add_thread(iter(iadds(n)))
        t_solo = solo.run().ticks

        with_pauser = make_core()
        with_pauser.add_thread(iter(iadds(n)))
        with_pauser.add_thread(iter([Instr(Op.PAUSE) for _ in range(200)]))
        t_paused = with_pauser.run().ticks
        assert t_paused < t_solo * 1.15


class TestLoadQueueAccounting:
    def test_lq_stall_event_fires_under_pressure(self):
        mem = MemConfig(prefetch_enabled=False)
        # Far-striding loads: every one misses to memory, LQ backs up.
        loads = [Instr.load(0x100000 + i * 4096, dst=F(0))
                 for i in range(300)]
        core = make_core(mem=mem)
        core.add_thread(iter(loads))
        core.add_thread(iter(iadds(2000)))
        result = core.run()
        assert result.monitor.read(Event.RESOURCE_STALL_LQ, 0) > 0

    def test_lq_drains_to_zero(self):
        core = make_core()
        core.add_thread(iter([Instr.load(0x40 * i, dst=F(0))
                              for i in range(50)]))
        core.run()
        assert core.threads[0].lq_used == 0


class TestStoreDrainOrdering:
    def test_sq_releases_in_fifo_order(self):
        """In-order SQ release: a store miss pins younger hit stores."""
        mem = MemConfig(prefetch_enabled=False)
        core = make_core(mem=mem)
        # Warm line 0x80 so the second store hits; first store misses.
        warm = [Instr.load(0x80, dst=F(0))]
        stores = [
            Instr.store(0x200000, src=F(0), op=Op.FSTORE),  # miss
            Instr.store(0x80, src=F(0), op=Op.FSTORE),      # hit
        ]
        core.add_thread(iter(warm + stores))
        core.run()
        rel = core._sq_release[0]
        assert core.threads[0].sq_used == 0  # flushed at end


class TestHaltEdgeCases:
    def test_double_wake_is_harmless(self):
        core = make_core()

        def waker():
            for i in iadds(3000):
                yield i
            yield Instr(Op.NOP, effect=lambda: core.wake(0))
            yield Instr(Op.NOP, effect=lambda: core.wake(0))

        core.add_thread(iter([Instr(Op.HALT)] + iadds(10)))
        core.add_thread(waker())
        result = core.run()
        assert result.retired[0] == 11

    def test_wake_on_active_thread_is_a_pending_noop(self):
        core = make_core()

        def waker():
            yield Instr(Op.NOP, effect=lambda: core.wake(0))
            yield from iadds(50)

        core.add_thread(iter(iadds(50)))  # never halts
        core.add_thread(waker())
        result = core.run()  # must terminate normally
        assert result.retired == (50, 51)
