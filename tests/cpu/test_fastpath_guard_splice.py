"""Guard-aware splice windows: ``extrapolation_limit_with_break``.

The extrapolation limit used to report only *how many* recurrences are
provable; the fast-forward then re-probed the guarded chunk one short
sleep at a time.  The break phase turns the guard trip into a
certified splice window: the fast-forward computes the exact sleep
that clears the unsound chunk and resumes capturing right after it.

The slow test at the bottom pins the measured payoff: mm n=64
certified coverage must stay at least the committed 0.8437.
"""

import pytest

from repro.common.addrspace import AddressSpace
from repro.isa import F, Instr, Op
from repro.isa.trace import PhaseMarker, compile_tiled


def _march(region, phases, step=64, lines=2):
    """``phases`` identical-pattern phases, each shifted ``step`` bytes."""
    def gen():
        for f in range(phases):
            yield PhaseMarker()
            base = region.base + f * step
            for j in range(lines):
                yield Instr.load(base + j * 64, dst=F(0))
                yield Instr.arith(Op.FADD, dst=F(1), src=F(0))

    return compile_tiled(gen(), [region])


class TestBreakPhase:
    def test_clean_run_reports_no_break(self):
        region = AddressSpace().alloc("a", 1 << 20)
        trace = _march(region, phases=16)
        k, brk = trace.extrapolation_limit_with_break(
            0, 1, (64,), max_k=4, guard_bytes=0)
        assert k == 4
        assert brk == -1

    def test_trace_exhaustion_is_not_a_break(self):
        region = AddressSpace().alloc("a", 1 << 20)
        trace = _march(region, phases=8)
        k, brk = trace.extrapolation_limit_with_break(
            0, 1, (64,), max_k=100, guard_bytes=0)
        assert k == 6           # phases 2..7 telescope from (0, 1)
        assert brk == -1        # ran off the end, nothing broke

    def test_guard_trip_names_the_first_unsound_phase(self):
        region = AddressSpace().alloc("a", 2048)
        guard = 256
        trace = _march(region, phases=30)
        k, brk = trace.extrapolation_limit_with_break(
            0, 1, (64,), max_k=30, guard_bytes=guard)
        # The scan refuses to enter phase b once the *previous* phase's
        # working set came within guard_bytes of the region top; the
        # expected break is the first such b.
        want = next(
            b for b in range(2, 30)
            if region.base + (b - 1) * 64 + 64 + guard >= region.end)
        assert brk == want
        assert 1 <= k < 30
        assert k == (want - 1) - 1  # good phases stop just short of brk

    def test_pattern_break_names_the_breaking_phase(self):
        region = AddressSpace().alloc("a", 1 << 20)

        def gen():
            for f in range(12):
                yield PhaseMarker()
                base = region.base + f * 64
                yield Instr.load(base, dst=F(0))
                yield Instr.arith(Op.FADD, dst=F(1), src=F(0))
                if f == 9:      # the schedule changes shape here
                    yield Instr.arith(Op.FMUL, dst=F(2), src=F(1))

        trace = compile_tiled(gen(), [region])
        k, brk = trace.extrapolation_limit_with_break(
            0, 1, (64,), max_k=12, guard_bytes=0)
        assert brk == 9
        assert k == (brk - 1) - 1

    def test_plain_limit_is_the_first_component(self):
        region = AddressSpace().alloc("a", 2048)
        trace = _march(region, phases=30)
        for guard in (0, 128, 512):
            k, _ = trace.extrapolation_limit_with_break(
                0, 1, (64,), max_k=30, guard_bytes=guard)
            assert trace.extrapolation_limit(
                0, 1, (64,), max_k=30, guard_bytes=guard) == k


@pytest.mark.slow
def test_mm_certified_coverage_holds_the_committed_floor():
    """The guard-aware splice regression: before break phases, mm's
    fast-forward lost the guarded tail of every tile sweep to one-
    short-sleep re-probing; the splice window lifted certified n=64
    coverage to 0.8437, and it must never regress below it."""
    from repro.core.apps import Variant, run_app_experiment
    from repro.cpu import fastpath as _fastpath

    _fastpath.reset_stats()
    run_app_experiment("mm", Variant.SERIAL, {"n": 64}, fastpath=True)
    st = _fastpath.stats()
    assert st.cert_jumps >= 1
    assert st.coverage >= 0.8437
