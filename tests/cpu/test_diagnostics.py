"""Tests for failure diagnostics (deadlock reports, thread describe)."""

import pytest

from repro.common import DeadlockError
from repro.cpu import CoreConfig, SMTCore, ThreadContext
from repro.isa import Instr, Op, R


class TestDescribe:
    def test_describe_mentions_state_and_counts(self):
        th = ThreadContext(1, iter([]))
        text = th.describe()
        assert "T1" in text and "active" in text
        assert "rob=0" in text

    def test_describe_shows_wake(self):
        th = ThreadContext(0, iter([]))
        th.wake_at = 1234
        assert "wake_at=1234" in th.describe()
        th2 = ThreadContext(0, iter([]))
        assert "wake_at=-" in th2.describe()


class TestDeadlockReporting:
    def test_halted_forever_raises_with_diagnostics(self):
        core = SMTCore(CoreConfig())
        core.add_thread(iter([Instr(Op.HALT)]))
        core.add_thread(iter([Instr.arith(Op.IADD, dst=R(0), src=R(8))]))
        with pytest.raises(DeadlockError) as exc:
            core.run()
        assert "halted" in str(exc.value)
        assert "T0" in exc.value.diagnostics

    def test_max_ticks_reports_thread_states(self):
        core = SMTCore(CoreConfig())
        core.add_thread(
            iter(Instr.arith(Op.IADD, dst=R(0), src=R(0))
                 for _ in range(10**6))
        )
        with pytest.raises(DeadlockError) as exc:
            core.run(max_ticks=50)
        assert "exceeded" in str(exc.value)
