"""The fast-forward's accounting: why it engaged — or declined to —
must be visible as structured counters, without ever influencing what
the simulator computes (that half of the contract lives in
test_fastpath_equiv; this file pins the observer itself)."""

import pytest

from repro.core.streams import measure_stream_cpi
from repro.cpu import fastpath as _fastpath
from repro.cpu.fastpath import FastpathStats, merge_stats
from repro.isa import Instr, Op, R
from repro.isa.streams import ILP, StreamSpec
from repro.isa.trace import compile_stream
from repro.observe import PipelineTracer
from repro.runtime.program import Program

H = 20_000


@pytest.fixture(autouse=True)
def _fresh_counters():
    _fastpath.reset_stats()
    yield
    _fastpath.reset_stats()


def _run_stream(fastpath, tracer=None):
    prog = Program(tracer=tracer, fastpath=fastpath)
    trace = compile_stream(StreamSpec("iadd", ilp=ILP.MAX, count=1 << 30))
    prog.add_thread(lambda api, tr=trace: tr)
    return prog.run(stop_at_tick=H)


class TestAcceptanceCounters:
    def test_engaged_run_jumps_and_skips_ticks(self):
        _run_stream(True)
        st = _fastpath.stats()
        assert st.runs == 1
        assert st.armed == 1
        assert st.captures >= 1
        assert st.jumps >= 1
        assert st.ticks_total == H
        assert 0 < st.ticks_skipped <= st.ticks_total
        assert st.coverage > 0.5       # steady iadd is the ideal case
        assert st.stand_downs == {}

    def test_ticks_total_counts_even_without_engagement(self):
        _run_stream(False)
        st = _fastpath.stats()
        assert st.ticks_total == H and st.ticks_skipped == 0
        assert st.coverage == 0.0


class TestStandDownReasons:
    def test_disabled(self):
        _run_stream(False)
        st = _fastpath.stats()
        assert st.stand_downs == {"disabled": 1}
        assert st.armed == 0 and st.jumps == 0

    def test_tracer_active(self):
        _run_stream(True, tracer=PipelineTracer())
        st = _fastpath.stats()
        assert st.stand_downs == {"tracer-active": 1}
        assert st.jumps == 0

    def test_plain_generator_source(self):
        def endless_iadds():
            while True:
                yield Instr.arith(Op.IADD, dst=R(0), src=R(8))

        prog = Program(fastpath=True)
        prog.add_thread(lambda api: endless_iadds())
        prog.run(stop_at_tick=2_000)
        st = _fastpath.stats()
        assert st.stand_downs.get("plain-generator", 0) >= 1
        assert st.jumps == 0

    def test_reasons_accumulate_across_runs(self):
        _run_stream(False)
        _run_stream(False)
        _run_stream(True, tracer=PipelineTracer())
        st = _fastpath.stats()
        assert st.runs == 3
        assert st.stand_downs == {"disabled": 2, "tracer-active": 1}


class TestSnapshotAndMerge:
    def test_to_dict_reasons_sorted(self):
        st = FastpathStats()
        st.bump(st.stand_downs, "horizon")
        st.bump(st.stand_downs, "disabled")
        st.bump(st.capture_aborts, "unmapped-addr")
        snap = st.to_dict()
        assert list(snap["stand_downs"]) == ["disabled", "horizon"]
        assert snap["capture_aborts"] == {"unmapped-addr": 1}

    def test_reset_returns_singleton_zeroed(self):
        _run_stream(True)
        st = _fastpath.reset_stats()
        assert st is _fastpath.stats()
        assert st.to_dict()["jumps"] == 0 and st.stand_downs == {}

    def test_merge_sums_scalars_and_reason_tables(self):
        into = {}
        a = {"jumps": 2, "ticks_skipped": 50, "ticks_total": 100,
             "stand_downs": {"horizon": 1}}
        b = {"jumps": 3, "ticks_skipped": 25, "ticks_total": 100,
             "stand_downs": {"horizon": 2, "disabled": 1},
             "capture_aborts": {"effectful-op": 4}}
        merge_stats(into, a)
        merge_stats(into, b)
        assert into == {"jumps": 5, "ticks_skipped": 75, "ticks_total": 200,
                        "stand_downs": {"horizon": 3, "disabled": 1},
                        "capture_aborts": {"effectful-op": 4}}

    def test_per_cell_delta_idiom(self):
        """reset() before / to_dict() after — what sweep workers do."""
        _run_stream(True)                      # noise from a prior cell
        _fastpath.reset_stats()
        _run_stream(False)
        delta = _fastpath.stats().to_dict()
        assert delta["runs"] == 1
        assert delta["stand_downs"] == {"disabled": 1}


class TestCaptureAbortTaxonomy:
    """A cell whose captures persistently abort must stand down under
    ``capture-abort:<reason>`` — not burn its budgets and report a
    generic (or worse, unrelated) bucket."""

    def _run_pair_with_aborting_captures(self, monkeypatch, reason):
        from repro.cpu.fastpath import FastPath

        def abort_capture(self, t):
            return self._abort(reason)

        monkeypatch.setattr(FastPath, "_capture", abort_capture)
        prog = Program(fastpath=True)
        for i in range(2):
            trace = compile_stream(
                StreamSpec("iadd", ilp=ILP.MAX, count=1 << 30))
            prog.add_thread(lambda api, tr=trace: tr)
        return prog.run(stop_at_tick=120_000)

    def test_persistent_aborts_attribute_stand_down(self, monkeypatch):
        self._run_pair_with_aborting_captures(monkeypatch, "effectful-op")
        st = _fastpath.stats()
        assert st.stand_downs.get("capture-abort:effectful-op", 0) == 1
        assert "no-threads" not in st.stand_downs
        assert "capture-budget" not in st.stand_downs
        assert "probe-budget" not in st.stand_downs
        assert st.capture_aborts.get("effectful-op", 0) >= 1
        assert st.jumps == 0

    def test_dominant_reason_wins(self, monkeypatch):
        from itertools import cycle

        from repro.cpu.fastpath import FastPath

        reasons = cycle(["off-rob-dep", "unmapped-addr", "unmapped-addr"])

        def abort_capture(self, t):
            return self._abort(next(reasons))

        monkeypatch.setattr(FastPath, "_capture", abort_capture)
        prog = Program(fastpath=True)
        trace = compile_stream(StreamSpec("iadd", ilp=ILP.MAX, count=1 << 30))
        prog.add_thread(lambda api, tr=trace: tr)
        prog.run(stop_at_tick=120_000)
        st = _fastpath.stats()
        assert st.stand_downs.get("capture-abort:unmapped-addr", 0) == 1

    def test_transient_aborts_do_not_stand_down(self):
        """The real pair harness aborts a handful of captures around
        marker retirement; that must stay far below the stand-down
        threshold and never disarm the cell."""
        measure_stream_cpi("iadd", ILP.MAX, 2, horizon_ticks=H)
        st = _fastpath.stats()
        assert not any(k.startswith("capture-abort:")
                       for k in st.stand_downs)
        assert st.jumps >= 1

    def test_abort_streak_resets_on_clean_capture(self):
        from repro.cpu.fastpath import FastPath, _ABORT_LIMIT

        fp = FastPath.__new__(FastPath)
        fp._st = _fastpath.stats()
        fp._abort_streak = 0
        fp._abort_reasons = {}
        fp._armed = True
        for _ in range(_ABORT_LIMIT - 1):
            fp._abort("effectful-op")
        assert not fp._abort_stand_down() and fp._armed
        fp._abort_streak = 0          # what a clean capture does
        fp._abort("effectful-op")
        assert not fp._abort_stand_down() and fp._armed
        fp._abort_streak = _ABORT_LIMIT
        assert fp._abort_stand_down() and not fp._armed


def _tiled_loop_program(tiles, passes, lines_per_tile=8):
    """A cyclic tiled workload: ``passes`` sweeps over ``tiles`` tiles
    of the same region.  Certifies ``recurrent`` (whole-pass identity:
    window deltas all zero at dphase == tiles), and after the cache
    warms the canonical key recurs pass over pass — the ideal
    certificate-guided case, in miniature."""
    from repro.check.recurrence import attach_certificate
    from repro.common.addrspace import AddressSpace
    from repro.isa import F
    from repro.isa.trace import PHASE, compile_tiled

    aspace = AddressSpace()
    region = aspace.alloc("a", tiles * lines_per_tile * 64)

    def gen():
        for _p in range(passes):
            for tile in range(tiles):
                base = region.base + tile * lines_per_tile * 64
                for j in range(lines_per_tile):
                    yield Instr.load(base + j * 64, dst=F(0))
                    yield Instr.arith(Op.FADD, dst=F(1), src=F(0))
                yield PHASE

    trace = attach_certificate(compile_tiled(gen(), [region]))
    prog = Program(fastpath=True)
    prog.add_thread(lambda api, tr=trace: tr)
    return prog, trace


class TestCertificateGuidance:
    """The certificate-guided arm's accounting: cert-mode runs land in
    their own counters (``cert_runs``/``cert_captures``/``cert_jumps``)
    and the two stand-down verdicts — ``cert-none`` (proven fruitless,
    detection skipped) and ``cert-mismatch`` (static and dynamic views
    disagree, dynamic detection takes over) — are attributed exactly."""

    def test_cert_guided_run_jumps_under_cert_counters(self):
        prog, trace = _tiled_loop_program(tiles=4, passes=128)
        assert trace.cert.verdict == "recurrent"
        prog.run()
        st = _fastpath.stats()
        assert st.cert_runs == 1
        assert st.cert_captures >= 1
        assert st.cert_jumps >= 1
        assert st.jumps >= st.cert_jumps
        assert st.ticks_skipped > 0
        assert st.stand_downs == {}

    def test_cert_none_stands_down_without_any_capture(self):
        """Quadratic tile spacing: no phase distance admits a constant
        set-preserving shift, so the certificate proves the search
        fruitless and the run never arms at all."""
        from repro.check.recurrence import attach_certificate
        from repro.common.addrspace import AddressSpace
        from repro.isa import F
        from repro.isa.trace import PHASE, compile_tiled

        aspace = AddressSpace()
        region = aspace.alloc("a", 24 * 24 * 8 * 64)

        def gen():
            for tile in range(24):
                base = region.base + tile * tile * 8 * 64
                for j in range(8):
                    yield Instr.load(base + j * 64, dst=F(0))
                    yield Instr.arith(Op.FADD, dst=F(1), src=F(0))
                yield PHASE

        trace = attach_certificate(compile_tiled(gen(), [region]))
        assert trace.cert.verdict == "none"
        prog = Program(fastpath=True)
        prog.add_thread(lambda api, tr=trace: tr)
        prog.run()
        st = _fastpath.stats()
        assert st.stand_downs == {"cert-none": 1}
        assert st.armed == 0 and st.captures == 0 and st.jumps == 0
        assert st.cert_runs == 0

    def test_cert_mismatch_falls_back_to_dynamic_detection(self):
        """Eight tiles per pass: the cache warms slower than the strike
        budget, so aligned captures never revisit a canonical state in
        time.  The run must record ``cert-mismatch`` — not a generic
        bucket — and hand the rest of the run to dynamic detection
        instead of disarming."""
        prog, trace = _tiled_loop_program(tiles=8, passes=64)
        assert trace.cert.verdict == "recurrent"
        prog.run()
        st = _fastpath.stats()
        assert st.stand_downs.get("cert-mismatch", 0) == 1
        assert st.cert_runs == 1
        assert st.cert_captures >= 1
        assert st.cert_jumps == 0
        assert "capture-budget" not in st.stand_downs
        assert "probe-budget" not in st.stand_downs
        # The fallback re-armed dynamic detection rather than standing
        # the run down outright.
        assert st.armed == 1


class TestPairCertificateGuidance:
    """The pair-certificate arm's accounting: joint-lattice runs land
    in ``pair_cert_runs``/``pair_cert_captures``/``pair_cert_jumps``,
    and the two stand-down verdicts — ``pair-cert-none`` (composition
    proves the pair fruitless) and ``pair-cert-mismatch`` (a claim the
    actual run does not re-derive) — are attributed exactly."""

    def _run_pair(self, cert, names=("fload", "iload"), horizon=220_000):
        prog = Program(fastpath=True)
        for i, name in enumerate(names):
            spec = StreamSpec(name, ilp=ILP.MAX, count=1 << 30)
            region = None
            if spec.is_memory:
                region = prog.aspace.alloc(f"v{i}", 16384, elem_size=1)
            trace = compile_stream(spec, region)
            prog.add_thread(lambda api, tr=trace: tr)
        _fastpath.attach_pair_certificate(cert)
        return prog.run(stop_at_tick=horizon)

    def test_pair_cert_run_jumps_under_pair_counters(self):
        from repro.check.compose import compose_pair

        self._run_pair(compose_pair("fload", "iload"))
        st = _fastpath.stats()
        assert st.pair_cert_runs == 1
        assert st.pair_cert_captures >= 1
        assert st.pair_cert_jumps >= 1
        assert st.jumps >= st.pair_cert_jumps
        assert st.ticks_skipped > 0
        assert st.stand_downs == {}

    def test_pair_cert_none_stands_down_without_any_capture(self):
        import dataclasses

        from repro.check.compose import compose_pair

        cert = dataclasses.replace(
            compose_pair("fload", "iload"), verdict="none")
        self._run_pair(cert, horizon=20_000)
        st = _fastpath.stats()
        assert st.stand_downs == {"pair-cert-none": 1}
        assert st.armed == 0 and st.captures == 0 and st.jumps == 0
        assert st.pair_cert_runs == 0

    def test_pair_cert_mismatch_falls_back_to_dynamic_detection(self):
        """A certificate composed for a different pair: the arm gate
        re-derives both sides' lattices, refuses guidance under
        ``pair-cert-mismatch``, and hands the run to dynamic detection
        — which still jumps."""
        from repro.check.compose import compose_pair

        self._run_pair(compose_pair("fdiv", "fdiv"))
        st = _fastpath.stats()
        assert st.stand_downs.get("pair-cert-mismatch", 0) == 1
        assert st.pair_cert_runs == 0
        assert st.pair_cert_jumps == 0
        assert st.armed == 1
        assert st.jumps >= 1

    def test_staged_certificate_is_consumed_by_one_run(self):
        """attach_pair_certificate is per-run: the first prepare()
        consumes the hint, so the next run cannot inherit it."""
        from repro.check.compose import compose_pair

        self._run_pair(compose_pair("fload", "iload"), horizon=20_000)
        assert _fastpath.stats().pair_cert_runs == 1
        self._run_pair(None, horizon=20_000)
        assert _fastpath.stats().pair_cert_runs == 1


class TestCountersDoNotPerturbResults:
    def test_counters_are_pure_observers(self):
        r1 = measure_stream_cpi("iadd", ILP.MAX, 2, horizon_ticks=H)
        _fastpath.reset_stats()
        r2 = measure_stream_cpi("iadd", ILP.MAX, 2, horizon_ticks=H)
        snap = _fastpath.stats().to_dict()
        r3 = measure_stream_cpi("iadd", ILP.MAX, 2, horizon_ticks=H)
        assert r1.cpi == r2.cpi == r3.cpi
        assert snap["runs"] == 1
