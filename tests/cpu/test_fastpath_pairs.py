"""Differential equivalence harness for fig2 co-execution pairs.

The hierarchical fast-forward (super-period pairing + tile-level
recurrence) must be invisible in every observable: with fastpath on,
every ``CoreResult`` field, every PerfMonitor counter, and every
CycleAccountant ledger is byte-identical to the fully stepped run.
This suite draws random legal pairs from the fig2 generator space
(panels a/b/c plus self-pairs) and proves the contract over the real
measurement harness (``run_pair_cpis``) and over raw Program runs in
both stopping modes (stop-on-first-done and run-to-completion).

Seeds are pinned per CI leg via ``FASTPATH_EQUIV_SEED`` so the three
CI matrix entries explore disjoint example streams deterministically.
"""

import os

from hypothesis import HealthCheck, given, seed, settings, strategies as st

from repro.core.coexec import (
    FIG2A_STREAMS,
    FIG2B_STREAMS,
    FIG2C_PAIRS,
    run_pair_cpis,
)
from repro.isa.streams import ILP, StreamSpec
from repro.isa.trace import compile_stream
from repro.observe import CycleAccountant
from repro.runtime.program import Program

_SEED = int(os.environ.get("FASTPATH_EQUIV_SEED", "0"))

#: The fig2 generator space: every pair the figure can ask for.
_FIG2_PAIRS = sorted(set(
    [(a, b) for i, a in enumerate(FIG2A_STREAMS) for b in FIG2A_STREAMS[i:]]
    + [(a, b) for i, a in enumerate(FIG2B_STREAMS) for b in FIG2B_STREAMS[i:]]
    + list(FIG2C_PAIRS)
))

_ENDLESS = 1 << 30

_COMMON = dict(deadline=None,
               suppress_health_check=[HealthCheck.too_slow])


def _run_raw(pair, ilp, fastpath, counts=None, **run_kw):
    acct = CycleAccountant()
    prog = Program(accountant=acct, fastpath=fastpath)
    for i, name in enumerate(pair):
        count = counts[i] if counts is not None else _ENDLESS
        spec = StreamSpec(name, ilp=ilp, count=count)
        region = None
        if spec.is_memory:
            region = prog.aspace.alloc(f"v{i}", 4096, elem_size=1)
        trace = compile_stream(spec, region)
        prog.add_thread(lambda api, tr=trace: tr)
    result = prog.run(**run_kw)
    return {
        "ticks": result.ticks,
        "instrs": result.instrs,
        "retired": result.retired,
        "done_ticks": result.done_ticks,
        "units": dict(result.unit_issue_counts),
        "monitor": [list(row) for row in result.monitor.raw],
        "acct": acct.to_dict(),
    }


# -- the real fig2 measurement harness --------------------------------------

@seed(_SEED)
@settings(max_examples=8, **_COMMON)
@given(
    pair=st.sampled_from(_FIG2_PAIRS),
    horizon=st.integers(15_000, 60_000).map(lambda t: t * 2),
)
def test_fig2_pair_cpis_identical(pair, horizon):
    """run_pair_cpis — marker warm-up, endless streams, tick horizon."""
    off = run_pair_cpis(pair[0], pair[1], ILP.MAX,
                        horizon_ticks=horizon, fastpath=False)
    on = run_pair_cpis(pair[0], pair[1], ILP.MAX,
                       horizon_ticks=horizon, fastpath=True)
    assert off == on


# -- raw runs: full CoreResult + monitor + accountant ------------------------

@seed(_SEED)
@settings(max_examples=8, **_COMMON)
@given(
    pair=st.sampled_from(_FIG2_PAIRS),
    ilp=st.sampled_from(list(ILP)),
    horizon=st.integers(4_000, 20_000).map(lambda t: t * 2),
)
def test_fig2_pair_full_state_identical(pair, ilp, horizon):
    off = _run_raw(pair, ilp, False, stop_at_tick=horizon)
    on = _run_raw(pair, ilp, True, stop_at_tick=horizon)
    assert off == on


@seed(_SEED)
@settings(max_examples=6, **_COMMON)
@given(
    pair=st.sampled_from(_FIG2_PAIRS),
    counts=st.tuples(st.integers(400, 5_000), st.integers(400, 5_000)),
)
def test_fig2_pair_run_to_completion_identical(pair, counts):
    off = _run_raw(pair, ILP.MAX, False, counts=list(counts))
    on = _run_raw(pair, ILP.MAX, True, counts=list(counts))
    assert off == on


@seed(_SEED)
@settings(max_examples=6, **_COMMON)
@given(
    pair=st.sampled_from(_FIG2_PAIRS),
    counts=st.tuples(st.integers(400, 3_000), st.integers(4_000, 10_000)),
    ilp=st.sampled_from(list(ILP)),
)
def test_fig2_pair_stop_on_first_done_identical(pair, counts, ilp):
    off = _run_raw(pair, ilp, False, counts=list(counts),
                   stop_on_first_done=True)
    on = _run_raw(pair, ilp, True, counts=list(counts),
                  stop_on_first_done=True)
    assert off == on


# -- the super-period detector must actually engage --------------------------

def test_pair_jump_engages_on_arith_pair():
    """(fadd, fmul) locks into a joint super-period and fast-forwards."""
    import repro.cpu.fastpath as fp

    fp.reset_stats()
    run_pair_cpis("fadd", "fmul", ILP.MAX, fastpath=True)
    st_ = fp.stats()
    assert st_.jumps >= 1
    assert st_.ticks_skipped > 0


# -- accelerated cells stay inside their provable static intervals -----------

#: The benchmark's headline subset plus the memory pairs: every cell
#: the fast-forward accelerates (or refuses) in BENCH_core.json.
_HEADLINE = (("fadd", "fmul"), ("fmul", "fmul"), ("iadd", "imul"),
             ("iadd", "iadd"), ("idiv", "fdiv"),
             ("fload", "iload"), ("fstore", "istore"))


def test_accelerated_pairs_stay_inside_model_intervals():
    """Fast-forwarded CPIs must still satisfy the repro.model oracle:
    each side inside its provable dual-stream interval, and the joint
    unit-utilization law intact."""
    import repro.cpu.fastpath as fp
    from repro.check.findings import Severity
    from repro.model.oracle import validate_cells
    from repro.sweep.cells import pair_cell

    jumped = 0
    for a, b in _HEADLINE:
        fp.reset_stats()
        cpis = run_pair_cpis(a, b, ILP.MAX, fastpath=True)
        jumped += fp.stats().jumps > 0
        findings = validate_cells([pair_cell(a, b, ILP.MAX)], [cpis])
        errors = [f for f in findings if f.severity is Severity.ERROR]
        assert not errors, "\n".join(str(f) for f in errors)
    assert jumped >= 5, "most headline cells should fast-forward"
