"""The steady-state fast-forward must be invisible in every result.

The contract (module docstring of :mod:`repro.cpu.fastpath`): with the
fast-forward on, every ``CoreResult`` field, every performance-monitor
counter, every unit issue count and every stall-accountant ledger is
byte-identical to the fully stepped run — the jumps are provably exact,
not approximate.  These tests enforce the contract over randomized
streams, ILP levels, horizons, and co-execution pairs, plus each of the
core's stopping modes.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.streams import measure_stream_cpi
from repro.cpu.config import CoreConfig
from repro.isa.streams import STREAM_OPS, ILP, StreamSpec
from repro.isa.trace import compile_stream
from repro.observe import CycleAccountant, PipelineTracer
from repro.runtime.program import Program

_ENDLESS = 1 << 30


def _run(names, ilp, fastpath, counts=None, accountant=None,
         profiler=None, tracer=None, **run_kw):
    prog = Program(tracer=tracer, accountant=accountant, profiler=profiler,
                   fastpath=fastpath)
    for i, name in enumerate(names):
        count = counts[i] if counts is not None else _ENDLESS
        spec = StreamSpec(name, ilp=ilp, count=count)
        region = None
        if spec.is_memory:
            region = prog.aspace.alloc(f"v{i}", 4096, elem_size=1)
        trace = compile_stream(spec, region)
        prog.add_thread(lambda api, tr=trace: tr)
    result = prog.run(**run_kw)
    return prog, result


def _snapshot(result, accountant=None):
    return {
        "ticks": result.ticks,
        "instrs": result.instrs,
        "retired": result.retired,
        "done_ticks": result.done_ticks,
        "units": dict(result.unit_issue_counts),
        "monitor": [list(row) for row in result.monitor.raw],
        "acct": accountant.to_dict() if accountant is not None else None,
    }


def _assert_equivalent(names, ilp, counts=None, **run_kw):
    acct_off = CycleAccountant()
    _, r_off = _run(names, ilp, False, counts=counts,
                    accountant=acct_off, **run_kw)
    acct_on = CycleAccountant()
    prog_on, r_on = _run(names, ilp, True, counts=counts,
                         accountant=acct_on, **run_kw)
    assert _snapshot(r_off, acct_off) == _snapshot(r_on, acct_on)
    assert acct_on.check_conservation()
    return prog_on, r_on


# -- randomized equivalence -------------------------------------------------

@settings(max_examples=15, deadline=None)
@given(
    name=st.sampled_from(sorted(STREAM_OPS)),
    ilp=st.sampled_from(list(ILP)),
    horizon=st.integers(2_000, 16_000).map(lambda t: t * 2),
)
def test_solo_streams_identical(name, ilp, horizon):
    _assert_equivalent([name], ilp, stop_at_tick=horizon)


@settings(max_examples=12, deadline=None)
@given(
    pair=st.tuples(st.sampled_from(sorted(STREAM_OPS)),
                   st.sampled_from(sorted(STREAM_OPS))),
    ilp=st.sampled_from(list(ILP)),
    horizon=st.integers(2_000, 12_000).map(lambda t: t * 2),
)
def test_coexec_pairs_identical(pair, ilp, horizon):
    _assert_equivalent(list(pair), ilp, stop_at_tick=horizon)


@settings(max_examples=10, deadline=None)
@given(
    name=st.sampled_from(["iadd", "imul", "fadd", "fmul", "idiv"]),
    counts=st.tuples(st.integers(500, 6_000), st.integers(500, 6_000)),
)
def test_run_to_completion_identical(name, counts):
    """Finite traces, default drain-everything stop condition."""
    _assert_equivalent([name, name], ILP.MAX, counts=list(counts))


@settings(max_examples=10, deadline=None)
@given(
    counts=st.tuples(st.integers(500, 4_000), st.integers(6_000, 12_000)),
    ilp=st.sampled_from(list(ILP)),
)
def test_stop_on_first_done_identical(counts, ilp):
    _assert_equivalent(["fadd", "iadd"], ilp, counts=list(counts),
                       stop_on_first_done=True)


# -- the fast path must actually engage -------------------------------------

def test_jumps_occur_and_cover_most_of_the_run():
    prog, result = _run(["iadd"], ILP.MAX, True, stop_at_tick=100_000)
    fp = prog.core._fp
    assert fp is not None and fp.jumps >= 1
    assert fp.ticks_skipped > result.ticks // 2


def test_full_measured_stream_identical_with_marker_parts():
    """The real §4 measurement harness: warm-up trace + one-shot marker
    + endless measure trace, chained — byte-identical CPIs across part
    transitions."""
    for name in ("iadd", "fmul", "iload"):
        r_off = measure_stream_cpi(name, ILP.MAX, 2, horizon_ticks=60_000,
                                   fastpath=False)
        r_on = measure_stream_cpi(name, ILP.MAX, 2, horizon_ticks=60_000,
                                  fastpath=True)
        assert r_off == r_on


# -- stand-down conditions --------------------------------------------------

def test_tracer_disables_fastpath():
    prog = Program(tracer=PipelineTracer(limit=10), fastpath=True)
    assert prog.core._fp is None


def test_profiler_disables_fastpath():
    class Profiler:
        def on_l2_miss(self, *a, **kw):
            pass

    prog, result = _run(["iadd"], ILP.MAX, True, profiler=Profiler(),
                        stop_at_tick=20_000)
    fp = prog.core._fp
    assert fp is not None
    assert fp.jumps == 0 and fp.ticks_skipped == 0


def test_plain_generator_disables_fastpath():
    from repro.isa.streams import make_stream

    prog = Program(fastpath=True)
    spec = StreamSpec("iadd", ilp=ILP.MAX, count=4_000)
    prog.add_thread(lambda api: make_stream(spec))
    result = prog.run()
    fp = prog.core._fp
    assert fp is not None
    assert fp.jumps == 0 and fp.ticks_skipped == 0
    assert result.retired == (4_000,)


def test_explicit_off_overrides_default():
    prog, _ = _run(["iadd"], ILP.MAX, False, stop_at_tick=20_000)
    assert prog.core._fp is None


# -- satellite regression: _advance horizon derives from the run bound ------

def test_advance_horizon_tracks_config_and_run_bounds():
    cfg = CoreConfig(max_ticks=5_000_000)
    prog = Program(cfg)
    assert prog.core._advance_horizon == cfg.max_ticks + 1
    spec = StreamSpec("iadd", ilp=ILP.MAX, count=100)
    prog.add_thread(lambda api: compile_stream(spec))
    prog.run(stop_at_tick=40_000)
    assert prog.core._advance_horizon == 40_000 + 1
