"""Basic single-thread behaviour of the SMT core model."""

import pytest

from repro.common import DeadlockError
from repro.cpu import CoreConfig, SMTCore
from repro.isa import Instr, Op, F, R
from repro.mem import MemConfig, MemoryHierarchy
from repro.perfmon import Event, PerfMonitor


def run_single(instrs, config=None, mem=None):
    cfg = config or CoreConfig()
    mon = PerfMonitor(cfg.num_threads)
    hier = MemoryHierarchy(mem or MemConfig(), mon, cfg.num_threads)
    core = SMTCore(cfg, hier, mon)
    core.add_thread(iter(instrs))
    return core.run()


class TestLifecycle:
    def test_empty_thread_finishes(self):
        result = run_single([])
        assert result.retired == (0,)

    def test_all_uops_retire(self):
        n = 100
        result = run_single(
            [Instr.arith(Op.IADD, dst=R(0), src=R(8)) for _ in range(n)]
        )
        assert result.retired[0] == n
        assert result.monitor.read(Event.UOPS_RETIRED, 0) == n

    def test_no_threads_is_an_error(self):
        from repro.common import ConfigError

        core = SMTCore(CoreConfig())
        with pytest.raises(ConfigError):
            core.run()

    def test_max_ticks_guard(self):
        cfg = CoreConfig()
        instrs = [Instr.arith(Op.FDIV, dst=F(0), src=F(8)) for _ in range(1000)]
        mon = PerfMonitor(cfg.num_threads)
        hier = MemoryHierarchy(MemConfig(), mon, cfg.num_threads)
        core = SMTCore(cfg, hier, mon)
        core.add_thread(iter(instrs))
        with pytest.raises(DeadlockError):
            core.run(max_ticks=100)


class TestDependencyTiming:
    def test_dependent_chain_runs_at_unit_latency(self):
        # 100 fadds in one RAW chain: 8 ticks (4 cycles) each.
        n = 100
        result = run_single(
            [Instr.arith(Op.FADD, dst=F(0), src=F(8)) for _ in range(n)]
        )
        assert result.cpi(0) == pytest.approx(4.0, rel=0.1)

    def test_independent_fadds_run_at_unit_throughput(self):
        # Six rotating targets: pipelined FP unit sustains 1 per cycle.
        n = 300
        instrs = [
            Instr.arith(Op.FADD, dst=F(i % 6), src=F(8)) for i in range(n)
        ]
        result = run_single(instrs)
        assert result.cpi(0) == pytest.approx(1.0, rel=0.1)

    def test_independent_iadds_are_fetch_bound(self):
        # 3 µops/cycle fetch is the single-thread ceiling.
        n = 600
        instrs = [
            Instr.arith(Op.IADD, dst=R(i % 6), src=R(8)) for i in range(n)
        ]
        result = run_single(instrs)
        assert result.cpi(0) == pytest.approx(1 / 3, rel=0.15)

    def test_iadd_chain_runs_at_double_speed(self):
        # Serial dependence through one register: 0.5 cycles per op.
        n = 400
        instrs = [Instr.arith(Op.IADD, dst=R(0), src=R(8)) for _ in range(n)]
        result = run_single(instrs)
        assert result.cpi(0) == pytest.approx(0.5, rel=0.1)

    def test_load_to_use_latency(self):
        # A serial load->fadd->load chain pays L1 latency + fadd latency
        # per iteration (the load's address depends on the previous fadd).
        mem = MemConfig()
        instrs = [Instr.load(0x1000, dst=F(1))]  # warm the line
        for _ in range(50):
            instrs.append(Instr.load(0x1000, dst=F(1), srcs=(F(1),)))
            instrs.append(Instr(Op.FADD, dst=F(1), srcs=(F(1),)))
        result = run_single(instrs, mem=mem)
        # Each pair costs at least load-to-use (2 cycles) + fadd (4 cycles);
        # allow ~250 cycles for the initial cold miss.
        assert result.cycles >= 50 * 6
        assert result.cycles <= 50 * 6 + 300


class TestMemoryIntegration:
    def test_l2_misses_counted_per_thread(self):
        mem = MemConfig(prefetch_enabled=False)
        instrs = [
            Instr.load(0x10000 + i * 4096, dst=F(0)) for i in range(10)
        ]
        result = run_single(instrs, mem=mem)
        assert result.monitor.read(Event.L2_READ_MISS, 0) == 10

    def test_store_drains_to_cache(self):
        instrs = [Instr.store(0x2000, src=F(1)) for _ in range(5)]
        result = run_single(instrs)
        assert result.monitor.read(Event.L1D_WRITE_ACCESS, 0) == 5

    def test_effect_fires_on_load_completion(self):
        seen = []
        instrs = [
            Instr.load(0x3000, dst=F(0), effect=lambda: seen.append("load")),
            Instr.store(0x3000, src=F(0), effect=lambda: seen.append("store")),
        ]
        run_single(instrs)
        assert seen == ["load", "store"]


class TestPause:
    def test_pause_gates_fetch(self):
        # pause + adds: the adds after each pause wait for the gate.
        cfg = CoreConfig()
        instrs = []
        for _ in range(20):
            instrs.append(Instr(Op.PAUSE))
        result = run_single(instrs, config=cfg)
        # 20 pauses, each gating fetch for pause_fetch_gate ticks.
        assert result.ticks >= 20 * cfg.pause_fetch_gate

    def test_pause_retired_counted(self):
        result = run_single([Instr(Op.PAUSE)] * 7)
        assert result.monitor.read(Event.PAUSE_RETIRED, 0) == 7
