"""Validation tests for core configuration."""

import pytest

from repro.common import ConfigError
from repro.cpu import CoreConfig
from repro.cpu.config import DEFAULT_TIMINGS
from repro.isa import Op


class TestCoreConfig:
    def test_defaults_valid(self):
        CoreConfig()

    def test_three_threads_rejected(self):
        with pytest.raises(ConfigError):
            CoreConfig(num_threads=3)

    def test_odd_queue_rejected(self):
        with pytest.raises(ConfigError):
            CoreConfig(rob_total=127)

    def test_zero_width_rejected(self):
        with pytest.raises(ConfigError):
            CoreConfig(fetch_width=0)

    def test_missing_timing_rejected(self):
        timings = dict(DEFAULT_TIMINGS)
        del timings[Op.FADD]
        with pytest.raises(ConfigError):
            CoreConfig(timings=timings)

    def test_all_ops_have_timings(self):
        assert set(DEFAULT_TIMINGS) == set(Op)

    def test_netburst_signature_latencies(self):
        """The latencies the paper's analysis leans on (in ticks)."""
        t = DEFAULT_TIMINGS
        assert t[Op.IADD].latency == 1          # double-speed ALU
        assert t[Op.FADD].latency == 8          # 4 cycles
        assert t[Op.FMUL].latency == 12         # 6 cycles
        assert t[Op.FDIV].interval == t[Op.FDIV].latency  # not pipelined
        assert t[Op.ILOGIC].interval > t[Op.IADD].interval  # ALU0-only path

    def test_unified_queue_preset(self):
        cfg = CoreConfig.unified_queues()
        assert cfg.partitioned is False
        assert CoreConfig().partitioned is True

    def test_paper_default_preset(self):
        cfg = CoreConfig.paper_default()
        assert cfg.num_threads == 2
        assert cfg.rob_total == 126             # Netburst's 126-entry ROB


class TestMemConfigValidation:
    def test_l1_smaller_than_l2(self):
        from repro.mem import MemConfig

        with pytest.raises(ConfigError):
            MemConfig(l1_size=8192, l2_size=4096)

    def test_latency_ordering(self):
        from repro.mem import MemConfig

        with pytest.raises(ConfigError):
            MemConfig(l1_latency=50, l2_latency=36)

    def test_negative_prefetch_degree(self):
        from repro.mem import MemConfig

        with pytest.raises(ConfigError):
            MemConfig(prefetch_degree=-1)

    def test_no_prefetch_preset(self):
        from repro.mem import MemConfig

        assert MemConfig.no_prefetch().prefetch_enabled is False
        assert MemConfig.paper_scaled().prefetch_enabled is True
