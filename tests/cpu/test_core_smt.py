"""Two-thread (hyper-threading) behaviour of the core model."""

import pytest

from repro.common import DeadlockError
from repro.cpu import CoreConfig, SMTCore
from repro.isa import Instr, Op, F, R
from repro.mem import MemConfig, MemoryHierarchy
from repro.perfmon import Event, PerfMonitor


def make_core(config=None, mem=None):
    cfg = config or CoreConfig()
    mon = PerfMonitor(cfg.num_threads)
    hier = MemoryHierarchy(mem or MemConfig(), mon, cfg.num_threads)
    return SMTCore(cfg, hier, mon)


def iadds(n, ilp=6):
    return [Instr.arith(Op.IADD, dst=R(i % ilp), src=R(8)) for i in range(n)]


def fadds(n, ilp=6):
    return [Instr.arith(Op.FADD, dst=F(i % ilp), src=F(8)) for i in range(n)]


class TestFetchSharing:
    def test_two_busy_threads_split_fetch(self):
        """iadd x iadd at max ILP: each thread is fetch-bound at 1.5/cycle
        -> per-thread CPI doubles vs single-threaded (the paper's 100%
        iadd-iadd slowdown)."""
        n = 600
        core = make_core()
        core.add_thread(iter(iadds(n)))
        core.add_thread(iter(iadds(n)))
        result = core.run()
        # Combined throughput = full fetch bandwidth of 3 µops/cycle.
        assert result.cycles / n == pytest.approx(1 / 1.5, rel=0.15)

    def test_single_thread_on_smt_core_gets_full_bandwidth(self):
        n = 600
        core = make_core()
        core.add_thread(iter(iadds(n)))
        core.add_thread(iter([]))
        result = core.run()
        assert result.cpi(0) == pytest.approx(1 / 3, rel=0.15)

    def test_finished_peer_donates_bandwidth(self):
        """After the short thread drains, the long one speeds back up."""
        n_long, n_short = 2000, 100
        core = make_core()
        core.add_thread(iter(iadds(n_long)))
        core.add_thread(iter(iadds(n_short)))
        result = core.run()
        # Far closer to solo time (n/3 cycles) than to shared (n/1.5).
        solo = n_long / 3
        assert result.cycles < solo * 1.25


class TestExecutionContention:
    def test_fp_unit_shared_fairly(self):
        """fadd x fadd at max ILP: one FP unit -> each thread halves."""
        n = 400
        core = make_core()
        core.add_thread(iter(fadds(n)))
        core.add_thread(iter(fadds(n)))
        result = core.run()
        assert result.cpi(0) == pytest.approx(2.0, rel=0.15)

    def test_min_ilp_fadds_coexist_perfectly(self):
        """Two latency-bound chains fit in one pipelined unit (fig 1)."""
        n = 200
        solo = make_core()
        solo.add_thread(iter(fadds(n, ilp=1)))
        solo_cpi = solo.run().cpi(0)

        dual = make_core()
        dual.add_thread(iter(fadds(n, ilp=1)))
        dual.add_thread(iter(fadds(n, ilp=1)))
        dual_cpi = dual.run().cpi(0)
        assert dual_cpi == pytest.approx(solo_cpi, rel=0.1)

    def test_int_and_fp_do_not_contend(self):
        """iadd chain + fadd chain use different units: no slowdown."""
        n = 300
        solo = make_core()
        solo.add_thread(iter(fadds(n, ilp=1)))
        base = solo.run().cpi(0)

        dual = make_core()
        dual.add_thread(iter(fadds(n, ilp=1)))
        dual.add_thread(iter(iadds(n, ilp=1)))
        mixed = dual.run().cpi(0)
        assert mixed == pytest.approx(base, rel=0.12)


class TestStaticPartitioning:
    def _mm_like_misses(self, n):
        """Loads striding whole pages: every one is an L2 miss."""
        return [
            Instr.load(0x100000 + i * 4096, dst=F(0)) for i in range(n)
        ]

    def test_partitioned_rob_halves_mlp(self):
        """A miss-bound thread overlaps fewer misses when its sibling is
        active (halved ROB/LQ) — even if the sibling does nothing else."""
        n = 120
        mem = MemConfig(prefetch_enabled=False)
        solo = make_core(mem=mem)
        solo.add_thread(iter(self._mm_like_misses(n)))
        t_solo = solo.run().ticks

        dual = make_core(mem=mem)
        dual.add_thread(iter(self._mm_like_misses(n)))
        dual.add_thread(iter(iadds(40_000, ilp=1)))
        t_dual = dual.run().ticks
        assert t_dual > t_solo

    def test_unified_queue_ablation_restores_capacity(self):
        """A *light* sibling (a pausing helper, like an SPR prefetcher
        waiting at a barrier) costs a miss-bound worker real capacity
        under static partitioning; the unified ablation restores it.
        This isolates the paper's MM-pfetch 'no speedup despite -82%
        misses' mechanism."""
        cfg_part = CoreConfig()
        cfg_unif = CoreConfig.unified_queues()
        mem = MemConfig(prefetch_enabled=False)
        n = 120

        runs = {}
        for name, cfg in (("part", cfg_part), ("unif", cfg_unif)):
            core = make_core(cfg, mem=mem)
            core.add_thread(iter(self._mm_like_misses(n)))
            # Light sibling: stays active but fetches almost nothing.
            core.add_thread(iter([Instr(Op.PAUSE)] * 60))
            runs[name] = core.run().ticks
        assert runs["unif"] < runs["part"]

    def test_greedy_sibling_hogs_unified_queues(self):
        """Converse of the above: with *two busy* threads, unified queues
        let the fast in-order thread starve the miss-bound one — the
        reason hyper-threading partitions statically (paper §2: static
        partitioning 'mitigates significant slowdowns')."""
        mem = MemConfig(prefetch_enabled=False)
        n = 120
        runs = {}
        for name, cfg in (("part", CoreConfig()),
                          ("unif", CoreConfig.unified_queues())):
            core = make_core(cfg, mem=mem)
            core.add_thread(iter(self._mm_like_misses(n)))
            core.add_thread(iter(iadds(3000, ilp=1)))
            runs[name] = core.run().ticks
        assert runs["part"] < runs["unif"]

    def test_sb_stall_counter_fires_when_sq_full(self):
        # A long burst of striding stores overwhelms the 12-entry SQ half.
        n = 400
        stores = [
            Instr.store(0x200000 + i * 4096, src=F(1)) for i in range(n)
        ]
        core = make_core(mem=MemConfig(prefetch_enabled=False))
        core.add_thread(iter(stores))
        core.add_thread(iter(iadds(2000)))
        result = core.run()
        assert result.monitor.read(Event.RESOURCE_STALL_SB, 0) > 0


class TestHaltSemantics:
    def test_halt_without_wake_deadlocks(self):
        core = make_core()
        core.add_thread(iter([Instr(Op.HALT)]))
        core.add_thread(iter([]))
        with pytest.raises(DeadlockError):
            core.run()

    def test_halt_then_ipi_resumes(self):
        core = make_core()

        def waker():
            for i in iadds(2000):
                yield i
            yield Instr(Op.NOP, effect=lambda: core.wake(0))
            yield from iadds(10)

        core.add_thread(iter([Instr(Op.HALT)] + iadds(50)))
        core.add_thread(waker())
        result = core.run()
        assert result.retired[0] == 51
        assert result.monitor.read(Event.HALT_TRANSITIONS, 0) == 1
        assert result.monitor.read(Event.IPI_SENT, 0) == 1

    def test_wake_before_halt_retires_is_not_lost(self):
        """IPI racing the halt entry must still wake the sleeper."""
        core = make_core()

        def sleeper():
            yield Instr(Op.HALT)
            yield from iadds(5)

        def waker():
            # Wake immediately — almost surely before HALT retires
            # (halt entry costs ~600 ticks).
            yield Instr(Op.NOP, effect=lambda: core.wake(0))
            yield from iadds(100)

        core.add_thread(sleeper())
        core.add_thread(waker())
        result = core.run()
        assert result.retired[0] == 6

    def test_halted_thread_releases_partition_to_peer(self):
        """The survivor of a halt runs as fast as a true solo thread."""
        n = 3000

        solo = make_core()
        solo.add_thread(iter(iadds(n)))
        t_solo = solo.run().ticks

        core = make_core()
        done = {}

        def worker():
            for i in iadds(n):
                yield i
            yield Instr(Op.NOP, effect=lambda: core.wake(1))

        core.add_thread(iter([Instr(Op.HALT)])), core.add_thread(worker())
        # Reorder: sleeper is thread 0... rebuild properly below.
        core2 = make_core()

        def sleeper():
            yield Instr(Op.HALT)

        def worker2():
            for i in iadds(n):
                yield i
            yield Instr(Op.NOP, effect=lambda: core2.wake(0))

        core2.add_thread(sleeper())
        core2.add_thread(worker2())
        t_with_sleeper = core2.run().ticks
        # Within halt-transition overhead of the solo time.
        assert t_with_sleeper <= t_solo + 3000

    def test_gate_fetch_injects_flush_penalty(self):
        core = make_core()
        core.add_thread(iter(iadds(10)))
        core.add_thread(iter([]))
        core.gate_fetch(0, 100)
        result = core.run()
        assert result.ticks >= 100
        assert result.monitor.read(Event.PIPELINE_FLUSH, 0) == 1


class TestResultAccounting:
    def test_retired_split_per_thread(self):
        core = make_core()
        core.add_thread(iter(iadds(100)))
        core.add_thread(iter(fadds(50)))
        result = core.run()
        assert result.retired == (100, 50)
        assert result.instrs == (100, 50)

    def test_cpi_per_thread_and_overall(self):
        core = make_core()
        core.add_thread(iter(iadds(100)))
        core.add_thread(iter([]))
        result = core.run()
        assert result.cpi(0) == result.cycles / 100
        assert result.cpi() == result.cycles / 100
        assert result.ipc(0) == pytest.approx(1 / result.cpi(0))
