"""Tests for execution units and routing."""

import pytest

from repro.cpu import CoreConfig, UnitPool
from repro.cpu.units import ROUTES
from repro.isa import Op


@pytest.fixture
def pool():
    return UnitPool(CoreConfig())


class TestRouting:
    def test_every_opcode_routed(self):
        assert set(ROUTES) == set(Op)

    def test_logical_only_on_alu0(self):
        assert ROUTES[Op.ILOGIC] == ("alu0",)

    def test_fp_share_one_unit(self):
        for op in (Op.FADD, Op.FMUL, Op.IMUL):
            assert ROUTES[op] == ("fpexec",)

    def test_divides_use_the_divider(self):
        for op in (Op.FDIV, Op.IDIV):
            assert ROUTES[op] == ("fpdiv",)

    def test_int_add_uses_both_alus(self):
        assert set(ROUTES[Op.IADD]) == {"alu0", "alu1"}


class TestIssue:
    def test_pipelined_unit_accepts_every_interval(self, pool):
        ok1, c1 = pool.try_issue(int(Op.FADD), 0)
        assert ok1 and c1 == 8  # 4-cycle latency
        ok2, _ = pool.try_issue(int(Op.FADD), 1)
        assert not ok2  # initiation interval is 2 ticks
        ok3, _ = pool.try_issue(int(Op.FADD), 2)
        assert ok3

    def test_non_pipelined_divider_blocks_for_latency(self, pool):
        ok, comp = pool.try_issue(int(Op.FDIV), 0)
        assert ok and comp == 76
        assert not pool.try_issue(int(Op.FDIV), 75)[0]
        assert pool.try_issue(int(Op.FDIV), 76)[0]

    def test_divider_does_not_block_other_fp(self, pool):
        """fadd issues around an in-flight divide (min-ILP coexistence)."""
        pool.try_issue(int(Op.FDIV), 0)
        assert pool.try_issue(int(Op.FADD), 10)[0]

    def test_two_iadds_per_tick_via_two_alus(self, pool):
        assert pool.try_issue(int(Op.IADD), 0)[0]
        assert pool.try_issue(int(Op.IADD), 0)[0]
        assert not pool.try_issue(int(Op.IADD), 0)[0]  # both ALUs busy

    def test_logical_pair_serializes_on_alu0(self, pool):
        assert pool.try_issue(int(Op.ILOGIC), 0)[0]
        assert not pool.try_issue(int(Op.ILOGIC), 0)[0]
        assert not pool.try_issue(int(Op.ILOGIC), 1)[0]
        assert pool.try_issue(int(Op.ILOGIC), 2)[0]

    def test_loads_and_alu_independent(self, pool):
        assert pool.try_issue(int(Op.FLOAD), 0)[0]
        assert pool.try_issue(int(Op.IADD), 0)[0]

    def test_issue_counts(self, pool):
        pool.try_issue(int(Op.IADD), 0)
        pool.try_issue(int(Op.ILOGIC), 0)
        # IADD prefers ALU1, so ALU0 was free for the logical op.
        assert pool.issue_counts["alu1"] == 1
        assert pool.issue_counts["alu0"] == 1

    def test_reset(self, pool):
        pool.try_issue(int(Op.FDIV), 0)
        pool.reset()
        assert pool.try_issue(int(Op.FADD), 0)[0]
        assert pool.issue_counts["fpexec"] == 1
