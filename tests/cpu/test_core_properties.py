"""Property-based tests of the core model's structural invariants."""

from hypothesis import given, settings, strategies as st

from repro.cpu import CoreConfig, SMTCore, ThreadState
from repro.isa import Instr, Op, F, R
from repro.mem import MemConfig, MemoryHierarchy
from repro.perfmon import Event, PerfMonitor


def build_core(config=None):
    cfg = config or CoreConfig()
    mon = PerfMonitor(cfg.num_threads)
    hier = MemoryHierarchy(MemConfig(), mon, cfg.num_threads)
    return SMTCore(cfg, hier, mon)


_OPS = st.sampled_from([
    Op.IADD, Op.ISUB, Op.ILOGIC, Op.IMUL, Op.FADD, Op.FMUL, Op.FMOVE,
    Op.ILOAD, Op.FLOAD, Op.ISTORE, Op.FSTORE, Op.BRANCH, Op.NOP,
])


@st.composite
def instr_lists(draw, max_len=120):
    ops = draw(st.lists(_OPS, min_size=0, max_size=max_len))
    out = []
    for k, op in enumerate(ops):
        if op in (Op.ILOAD, Op.FLOAD):
            addr = draw(st.integers(0, 1 << 14)) * 8
            out.append(Instr.load(addr, dst=F(k % 8) if op is Op.FLOAD
                                  else R(k % 8), op=op))
        elif op in (Op.ISTORE, Op.FSTORE):
            addr = draw(st.integers(0, 1 << 14)) * 8
            out.append(Instr.store(addr, src=F(0), op=op))
        elif op in (Op.BRANCH, Op.NOP):
            out.append(Instr(op))
        elif op in (Op.FADD, Op.FMUL, Op.FMOVE):
            out.append(Instr.arith(op, dst=F(k % 8), src=F(8 + k % 4)))
        else:
            out.append(Instr.arith(op, dst=R(k % 8), src=R(8 + k % 4)))
    return out


@settings(max_examples=30, deadline=None)
@given(a=instr_lists(), b=instr_lists())
def test_every_uop_retires_and_machine_drains(a, b):
    """For any pair of straight-line programs: both threads drain, all
    µops retire exactly once, and all queues end empty."""
    core = build_core()
    core.add_thread(iter(a))
    core.add_thread(iter(b))
    result = core.run()
    assert result.retired == (len(a), len(b))
    for th in core.threads:
        assert th.state is ThreadState.DONE
        assert not th.uopq and not th.rob and not th.waiting
        assert th.lq_used == 0
    assert result.monitor.read(Event.UOPS_RETIRED) == len(a) + len(b)


@settings(max_examples=20, deadline=None)
@given(a=instr_lists(max_len=60))
def test_busy_disjoint_sibling_never_speeds_a_thread_up(a):
    """A sibling running the same program over *disjoint* data can only
    slow a thread down (with identical addresses it could legitimately
    speed it up by warming the shared caches)."""
    solo = build_core()
    solo.add_thread(iter(list(a)))

    # fresh Instr objects (they are single-use); offset addresses far
    # away for the sibling so no cache lines are shared.
    def clone(instrs, offset=0):
        return [
            Instr(i.op, dst=i.dst, srcs=i.srcs,
                  addr=None if i.addr is None else i.addr + offset,
                  site=i.site)
            for i in instrs
        ]

    t_solo = solo.run().ticks

    busy = build_core()
    busy.add_thread(iter(clone(a)))
    busy.add_thread(iter(clone(a, offset=1 << 20)))
    t_busy = busy.run().ticks
    # Small tolerance: run-end rounding to the next boundary can differ
    # by a couple of ticks between the two machines.
    assert t_busy >= t_solo - 4


@settings(max_examples=20, deadline=None)
@given(a=instr_lists(max_len=80))
def test_determinism(a):
    """Identical programs produce identical cycle counts."""

    def clone(instrs):
        return [
            Instr(i.op, dst=i.dst, srcs=i.srcs, addr=i.addr, site=i.site)
            for i in instrs
        ]

    r1 = build_core()
    r1.add_thread(iter(clone(a)))
    r2 = build_core()
    r2.add_thread(iter(clone(a)))
    assert r1.run().ticks == r2.run().ticks


@settings(max_examples=15, deadline=None)
@given(a=instr_lists(max_len=80), b=instr_lists(max_len=80))
def test_stall_counters_only_with_pressure(a, b):
    """SB stalls require stores; LQ stalls require loads."""
    core = build_core()
    core.add_thread(iter(a))
    core.add_thread(iter(b))
    result = core.run()
    has_stores = any(i.op in (Op.ISTORE, Op.FSTORE) for i in a + b)
    has_loads = any(i.op in (Op.ILOAD, Op.FLOAD) for i in a + b)
    if not has_stores:
        assert result.monitor.read(Event.RESOURCE_STALL_SB) == 0
    if not has_loads:
        assert result.monitor.read(Event.RESOURCE_STALL_LQ) == 0
