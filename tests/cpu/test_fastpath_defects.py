"""Seeded-defect fixtures for the hierarchical fast-forward verifier.

Mutation tests à la ``tests/check``: each test seeds one deliberate
defect into the super-period/tile fingerprint or the jump restore path
— a corruption class the structural snapshot verification exists to
rule out — and asserts the differential harness *kills* the mutant
(fastpath-on results diverge from fastpath-off, or the verifier refuses
the poisoned pair outright).  A surviving mutant would mean the
verification is vacuous for that class.

The five classes, per the detector's soundness argument:

* stale prefetch tag      — restore forgets to translate ``_pf_tag``
* off-by-one wrap splice  — state extrapolates k+1 periods while the
                            clock and splice schedule advance k
* ignored rename map      — restore drops an in-flight rename-map
                            entry, so a dependent issues early
* cross-thread store ordering — restore scrambles which thread's
                            pending store commits next
* dropped monitor delta   — restore loses one counter row's
                            extrapolated delta
"""

import pytest

from repro.cpu.fastpath import FastPath
from repro.cpu import fastpath as _fastpath
from repro.isa.streams import ILP, StreamSpec
from repro.isa.trace import compile_stream
from repro.runtime.program import Program

_ENDLESS = 1 << 30
_H = 220_000


def _run(names, fastpath, ilp=ILP.MAX, horizon=_H):
    prog = Program(fastpath=fastpath)
    for i, name in enumerate(names):
        spec = StreamSpec(name, ilp=ilp, count=_ENDLESS)
        region = None
        if spec.is_memory:
            region = prog.aspace.alloc(f"v{i}", 16384, elem_size=1)
        trace = compile_stream(spec, region)
        prog.add_thread(lambda api, tr=trace: tr)
    result = prog.run(stop_at_tick=horizon)
    return {
        "ticks": result.ticks,
        "retired": result.retired,
        "units": dict(result.unit_issue_counts),
        "monitor": [list(row) for row in result.monitor.raw],
    }


def _kill_check(names, seed_defect, monkeypatch, ilp=ILP.MAX,
                horizon=_H):
    """Stock A/B must agree; the seeded mutant must diverge."""
    baseline = _run(names, False, ilp=ilp, horizon=horizon)
    _fastpath.reset_stats()
    stock = _run(names, True, ilp=ilp, horizon=horizon)
    assert stock == baseline, "stock fastpath must be invisible"
    assert _fastpath.stats().jumps >= 1, (
        "fixture run must actually exercise the jump path")
    seed_defect(monkeypatch)
    _fastpath.reset_stats()
    mutated = _run(names, True, ilp=ilp, horizon=horizon)
    assert _fastpath.stats().jumps >= 1, (
        "mutant must still jump — a refusal to engage proves nothing")
    assert mutated != baseline, (
        "seeded defect survived: the structural verification never "
        "depended on the corrupted state")


# -- 1. stale prefetch tag ---------------------------------------------------

def _seed_stale_pf_tag(monkeypatch):
    orig = FastPath._apply

    def apply_stale_tags(self, prev, cap, k, period, dps, dls, tinfo,
                         windows_k, plan):
        stale = set(self.core.hierarchy._pf_tag)
        orig(self, prev, cap, k, period, dps, dls, tinfo, windows_k, plan)
        hier = self.core.hierarchy
        hier._pf_tag.clear()
        hier._pf_tag.update(stale)

    monkeypatch.setattr(FastPath, "_apply", apply_stale_tags)


def test_stale_prefetch_tag_is_caught(monkeypatch):
    _kill_check(["fload", "iload"], _seed_stale_pf_tag, monkeypatch)


# -- 2. off-by-one wrap splice -----------------------------------------------

def _seed_off_by_one_splice(monkeypatch):
    orig = FastPath._apply

    def apply_one_extra(self, prev, cap, k, period, dps, dls, tinfo,
                        windows_k, plan):
        # The jump schedule (clock, splice sleep, next capture) still
        # advances k periods, but the architectural state advances k+1
        # — the classic off-by-one between the splice arithmetic and
        # the state extrapolation it must stay in lockstep with.
        orig(self, prev, cap, k + 1, period, dps, dls, tinfo,
             windows_k, plan)

    monkeypatch.setattr(FastPath, "_apply", apply_one_extra)


def test_off_by_one_wrap_splice_is_caught(monkeypatch):
    _kill_check(["fload", "iload"], _seed_off_by_one_splice, monkeypatch)


# -- 3. ignored rename map ---------------------------------------------------

def _seed_ignored_regmap(monkeypatch):
    orig = FastPath._apply

    def apply_ignoring_regmap(self, prev, cap, k, period, dps, dls,
                              tinfo, windows_k, plan):
        orig(self, prev, cap, k, period, dps, dls, tinfo, windows_k,
             plan)
        # Drop one in-flight rename mapping: the next reader of that
        # register no longer sees its producer and issues early.
        for th in self.core.threads:
            for reg, p in list(th.regmap.items()):
                if not p.completed:
                    del th.regmap[reg]
                    return

    monkeypatch.setattr(FastPath, "_apply", apply_ignoring_regmap)


def test_ignored_rename_map_is_caught(monkeypatch):
    # MIN ILP: the serial dependency chains keep a divide in flight —
    # and hence a live rename mapping — at every jump boundary.
    _kill_check(["idiv", "fdiv"], _seed_ignored_regmap, monkeypatch,
                ilp=ILP.MIN)


# -- 4. cross-thread store ordering ------------------------------------------

def _seed_unordered_drain(monkeypatch):
    orig = FastPath._apply

    def apply_unordered_drain(self, prev, cap, k, period, dps, dls,
                              tinfo, windows_k, plan):
        orig(self, prev, cap, k, period, dps, dls, tinfo, windows_k,
             plan)
        # Reassign each thread's pending store-release schedule to the
        # other thread: the stores themselves survive, but their global
        # commit interleaving — which thread's store wins the shared
        # commit port next — is scrambled.
        sq = self.core._sq_release
        if len(sq) == 2 and list(sq[0]) != list(sq[1]):
            sq[0], sq[1] = sq[1], sq[0]

    monkeypatch.setattr(FastPath, "_apply", apply_unordered_drain)


def test_cross_thread_store_ordering_is_caught(monkeypatch):
    _kill_check(["fstore", "istore"], _seed_unordered_drain, monkeypatch)


# -- 5. dropped monitor delta ------------------------------------------------

def _seed_dropped_monitor_delta(monkeypatch):
    orig = FastPath._apply

    def apply_dropping_delta(self, prev, cap, k, period, dps, dls, tinfo,
                             windows_k, plan):
        raw = self.core.monitor.raw
        before = [list(row) for row in raw]
        orig(self, prev, cap, k, period, dps, dls, tinfo, windows_k, plan)
        # Drop the extrapolated delta of the first row that moved.
        for e, row in enumerate(raw):
            if list(row) != before[e]:
                for cpu in range(len(row)):
                    row[cpu] = before[e][cpu]
                break

    monkeypatch.setattr(FastPath, "_apply", apply_dropping_delta)


def test_dropped_monitor_delta_is_caught(monkeypatch):
    _kill_check(["fload", "iload"], _seed_dropped_monitor_delta, monkeypatch)
