"""Seeded-defect fixtures for the hierarchical fast-forward verifier.

Mutation tests à la ``tests/check``: each test seeds one deliberate
defect into the super-period/tile fingerprint or the jump restore path
— a corruption class the structural snapshot verification exists to
rule out — and asserts the differential harness *kills* the mutant
(fastpath-on results diverge from fastpath-off, or the verifier refuses
the poisoned pair outright).  A surviving mutant would mean the
verification is vacuous for that class.

The nine classes, per the detector's soundness argument:

* stale prefetch tag      — restore forgets to translate ``_pf_tag``
* off-by-one wrap splice  — state extrapolates k+1 periods while the
                            clock and splice schedule advance k
* ignored rename map      — restore drops an in-flight rename-map
                            entry, so a dependent issues early
* cross-thread store ordering — restore scrambles which thread's
                            pending store commits next
* dropped monitor delta   — restore loses one counter row's
                            extrapolated delta
* forged certificate      — a recurrence certificate lifted from a
                            different trace claims recurrence where
                            none exists
* corrupted cert-guided restore — the off-by-one, seeded specifically
                            under certificate guidance
* forged pair certificate — a joint certificate composed from a
                            different pair claims the wrong lattice
* corrupted pair-cert-guided restore — the off-by-one, seeded under
                            joint-lattice guidance
"""

import dataclasses

import pytest

from repro.check.compose import _stream_trace, compose_pair
from repro.check.recurrence import attach_certificate
from repro.common.addrspace import AddressSpace
from repro.cpu.fastpath import FastPath
from repro.cpu import fastpath as _fastpath
from repro.isa import F, Instr, Op
from repro.isa.streams import ILP, StreamSpec
from repro.isa.trace import PHASE, compile_stream, compile_tiled
from repro.runtime.program import Program

_ENDLESS = 1 << 30
_H = 220_000


def _run(names, fastpath, ilp=ILP.MAX, horizon=_H):
    prog = Program(fastpath=fastpath)
    for i, name in enumerate(names):
        spec = StreamSpec(name, ilp=ilp, count=_ENDLESS)
        region = None
        if spec.is_memory:
            region = prog.aspace.alloc(f"v{i}", 16384, elem_size=1)
        trace = compile_stream(spec, region)
        prog.add_thread(lambda api, tr=trace: tr)
    result = prog.run(stop_at_tick=horizon)
    return {
        "ticks": result.ticks,
        "retired": result.retired,
        "units": dict(result.unit_issue_counts),
        "monitor": [list(row) for row in result.monitor.raw],
    }


def _kill_check(names, seed_defect, monkeypatch, ilp=ILP.MAX,
                horizon=_H):
    """Stock A/B must agree; the seeded mutant must diverge."""
    baseline = _run(names, False, ilp=ilp, horizon=horizon)
    _fastpath.reset_stats()
    stock = _run(names, True, ilp=ilp, horizon=horizon)
    assert stock == baseline, "stock fastpath must be invisible"
    assert _fastpath.stats().jumps >= 1, (
        "fixture run must actually exercise the jump path")
    seed_defect(monkeypatch)
    _fastpath.reset_stats()
    mutated = _run(names, True, ilp=ilp, horizon=horizon)
    assert _fastpath.stats().jumps >= 1, (
        "mutant must still jump — a refusal to engage proves nothing")
    assert mutated != baseline, (
        "seeded defect survived: the structural verification never "
        "depended on the corrupted state")


# -- 1. stale prefetch tag ---------------------------------------------------

def _seed_stale_pf_tag(monkeypatch):
    orig = FastPath._apply

    def apply_stale_tags(self, prev, cap, k, period, dps, dls, tinfo,
                         windows_k, plan):
        stale = set(self.core.hierarchy._pf_tag)
        orig(self, prev, cap, k, period, dps, dls, tinfo, windows_k, plan)
        hier = self.core.hierarchy
        hier._pf_tag.clear()
        hier._pf_tag.update(stale)

    monkeypatch.setattr(FastPath, "_apply", apply_stale_tags)


def test_stale_prefetch_tag_is_caught(monkeypatch):
    _kill_check(["fload", "iload"], _seed_stale_pf_tag, monkeypatch)


# -- 2. off-by-one wrap splice -----------------------------------------------

def _seed_off_by_one_splice(monkeypatch):
    orig = FastPath._apply

    def apply_one_extra(self, prev, cap, k, period, dps, dls, tinfo,
                        windows_k, plan):
        # The jump schedule (clock, splice sleep, next capture) still
        # advances k periods, but the architectural state advances k+1
        # — the classic off-by-one between the splice arithmetic and
        # the state extrapolation it must stay in lockstep with.
        orig(self, prev, cap, k + 1, period, dps, dls, tinfo,
             windows_k, plan)

    monkeypatch.setattr(FastPath, "_apply", apply_one_extra)


def test_off_by_one_wrap_splice_is_caught(monkeypatch):
    _kill_check(["fload", "iload"], _seed_off_by_one_splice, monkeypatch)


# -- 3. ignored rename map ---------------------------------------------------

def _seed_ignored_regmap(monkeypatch):
    orig = FastPath._apply

    def apply_ignoring_regmap(self, prev, cap, k, period, dps, dls,
                              tinfo, windows_k, plan):
        orig(self, prev, cap, k, period, dps, dls, tinfo, windows_k,
             plan)
        # Drop one in-flight rename mapping: the next reader of that
        # register no longer sees its producer and issues early.
        for th in self.core.threads:
            for reg, p in list(th.regmap.items()):
                if not p.completed:
                    del th.regmap[reg]
                    return

    monkeypatch.setattr(FastPath, "_apply", apply_ignoring_regmap)


def test_ignored_rename_map_is_caught(monkeypatch):
    # MIN ILP: the serial dependency chains keep a divide in flight —
    # and hence a live rename mapping — at every jump boundary.
    _kill_check(["idiv", "fdiv"], _seed_ignored_regmap, monkeypatch,
                ilp=ILP.MIN)


# -- 4. cross-thread store ordering ------------------------------------------

def _seed_unordered_drain(monkeypatch):
    orig = FastPath._apply

    def apply_unordered_drain(self, prev, cap, k, period, dps, dls,
                              tinfo, windows_k, plan):
        orig(self, prev, cap, k, period, dps, dls, tinfo, windows_k,
             plan)
        # Reassign each thread's pending store-release schedule to the
        # other thread: the stores themselves survive, but their global
        # commit interleaving — which thread's store wins the shared
        # commit port next — is scrambled.
        sq = self.core._sq_release
        if len(sq) == 2 and list(sq[0]) != list(sq[1]):
            sq[0], sq[1] = sq[1], sq[0]

    monkeypatch.setattr(FastPath, "_apply", apply_unordered_drain)


def test_cross_thread_store_ordering_is_caught(monkeypatch):
    _kill_check(["fstore", "istore"], _seed_unordered_drain, monkeypatch)


# -- 5. dropped monitor delta ------------------------------------------------

def _seed_dropped_monitor_delta(monkeypatch):
    orig = FastPath._apply

    def apply_dropping_delta(self, prev, cap, k, period, dps, dls, tinfo,
                             windows_k, plan):
        raw = self.core.monitor.raw
        before = [list(row) for row in raw]
        orig(self, prev, cap, k, period, dps, dls, tinfo, windows_k, plan)
        # Drop the extrapolated delta of the first row that moved.
        for e, row in enumerate(raw):
            if list(row) != before[e]:
                for cpu in range(len(row)):
                    row[cpu] = before[e][cpu]
                break

    monkeypatch.setattr(FastPath, "_apply", apply_dropping_delta)


def test_dropped_monitor_delta_is_caught(monkeypatch):
    _kill_check(["fload", "iload"], _seed_dropped_monitor_delta, monkeypatch)


# -- 6. forged certificate ---------------------------------------------------

def _cyclic_tiled(tiles, passes, lines_per_tile=8):
    """Genuinely recurrent: ``passes`` sweeps over the same tiles."""
    aspace = AddressSpace()
    region = aspace.alloc("a", tiles * lines_per_tile * 64)

    def gen():
        for _p in range(passes):
            for tile in range(tiles):
                base = region.base + tile * lines_per_tile * 64
                for j in range(lines_per_tile):
                    yield Instr.load(base + j * 64, dst=F(0))
                    yield Instr.arith(Op.FADD, dst=F(1), src=F(0))
                yield PHASE

    return gen, [region]


def _aperiodic_tiled(tiles=40, lines_per_tile=8):
    """Genuinely non-recurrent: one pass, quadratically spaced tiles."""
    aspace = AddressSpace()
    region = aspace.alloc("a", tiles * tiles * lines_per_tile * 64)

    def gen():
        for tile in range(tiles):
            base = region.base + tile * tile * lines_per_tile * 64
            for j in range(lines_per_tile):
                yield Instr.load(base + j * 64, dst=F(0))
                yield Instr.arith(Op.FADD, dst=F(1), src=F(0))
            yield PHASE

    return gen, [region]


def _run_tiled(gen_factory, regions, fastpath, cert_from=None,
               horizon=None):
    trace = compile_tiled(gen_factory(), regions)
    if cert_from is not None:
        trace.cert = cert_from
    else:
        attach_certificate(trace)
    prog = Program(fastpath=fastpath)
    prog.add_thread(lambda api, tr=trace: tr)
    result = prog.run(stop_at_tick=horizon)
    return {
        "ticks": result.ticks,
        "retired": result.retired,
        "units": dict(result.unit_issue_counts),
        "monitor": [list(row) for row in result.monitor.raw],
    }


def test_forged_certificate_is_caught():
    """A certificate lifted from a recurrent trace and forged onto an
    aperiodic one must die twice over: the machine check rejects it
    statically, and the runtime — which treats certificates as capture
    hints, never as proof — stays byte-identical anyway, recording
    ``cert-mismatch`` once the aligned captures go nowhere."""
    cyc_gen, cyc_regions = _cyclic_tiled(tiles=4, passes=128)
    donor = attach_certificate(compile_tiled(cyc_gen(), cyc_regions))
    forged = donor.cert
    assert forged.verdict == "recurrent"

    ape_gen, ape_regions = _aperiodic_tiled()
    victim = compile_tiled(ape_gen(), ape_regions)
    assert attach_certificate(
        compile_tiled(ape_gen(), ape_regions)).cert.verdict == "none"

    # Static kill: validate() re-derives every claim against the trace.
    problems = forged.validate(victim)
    assert problems, "machine check must reject the forged certificate"

    # Runtime kill: hint-only consumption cannot corrupt results.
    baseline = _run_tiled(ape_gen, ape_regions, False)
    _fastpath.reset_stats()
    poisoned = _run_tiled(ape_gen, ape_regions, True, cert_from=forged)
    st = _fastpath.stats()
    assert poisoned == baseline, (
        "a forged certificate must never change simulated results")
    assert st.cert_runs == 1, "the forgery must actually arm cert mode"
    assert st.jumps == 0
    assert st.stand_downs.get("cert-mismatch", 0) == 1


# -- 7. corrupted cert-guided restore ----------------------------------------

def test_cert_guided_restore_off_by_one_is_caught(monkeypatch):
    """Certificate guidance changes where captures happen, not what a
    jump must prove — so the differential harness must kill a corrupted
    restore under cert guidance exactly as it does under dynamic
    detection."""
    # A horizon well inside the trace: the honest jump's k is capped by
    # the clock, not by trace exhaustion, so the k+1 mutant has trace
    # headroom to diverge into instead of tripping the cursor guard.
    gen, regions = _cyclic_tiled(tiles=4, passes=512)
    horizon = 40_000
    baseline = _run_tiled(gen, regions, False, horizon=horizon)
    _fastpath.reset_stats()
    stock = _run_tiled(gen, regions, True, horizon=horizon)
    assert stock == baseline, "stock cert-guided fastpath must be invisible"
    assert _fastpath.stats().cert_jumps >= 1, (
        "fixture run must jump under certificate guidance")

    _seed_off_by_one_splice(monkeypatch)
    _fastpath.reset_stats()
    mutated = _run_tiled(gen, regions, True, horizon=horizon)
    assert _fastpath.stats().cert_jumps >= 1, (
        "mutant must still jump — a refusal to engage proves nothing")
    assert mutated != baseline, (
        "seeded defect survived under certificate guidance")


# -- 8. forged pair certificate ----------------------------------------------

def _run_pair(names, fastpath, cert, horizon=_H):
    """Like ``_run`` but with a pair certificate staged for the run."""
    prog = Program(fastpath=fastpath)
    for i, name in enumerate(names):
        spec = StreamSpec(name, ilp=ILP.MAX, count=_ENDLESS)
        region = None
        if spec.is_memory:
            region = prog.aspace.alloc(f"v{i}", 16384, elem_size=1)
        trace = compile_stream(spec, region)
        prog.add_thread(lambda api, tr=trace: tr)
    if cert is not None:
        _fastpath.attach_pair_certificate(cert)
    result = prog.run(stop_at_tick=horizon)
    return {
        "ticks": result.ticks,
        "retired": result.retired,
        "units": dict(result.unit_issue_counts),
        "monitor": [list(row) for row in result.monitor.raw],
    }


def test_forged_pair_certificate_is_caught():
    """A pair certificate whose *joint* lattice is forged — both
    per-side claims kept genuine, so every per-side gate passes — must
    die twice over: ``validate()`` rejects it statically via the lcm
    consistency check, and the runtime's arm gate refuses guidance
    (``pair-cert-mismatch``), handing the run to dynamic detection
    byte-identically."""
    genuine = compose_pair("fload", "iload")
    assert genuine.verdict == "joint-periodic"
    forged = dataclasses.replace(
        genuine, joint_period_pos=2 * genuine.joint_period_pos)

    # Static kill: the machine check re-derives the joint lattice.
    problems = forged.validate(_stream_trace("fload", ILP.MAX),
                               _stream_trace("iload", ILP.MAX))
    assert problems, "machine check must reject the forged pair cert"

    # Runtime kill: hint-only consumption cannot corrupt results.
    baseline = _run_pair(["fload", "iload"], False, None)
    _fastpath.reset_stats()
    poisoned = _run_pair(["fload", "iload"], True, forged)
    st = _fastpath.stats()
    assert poisoned == baseline, (
        "a forged pair certificate must never change simulated results")
    assert st.pair_cert_runs == 0, "the forgery must never arm pair mode"
    assert st.pair_cert_jumps == 0
    assert st.stand_downs.get("pair-cert-mismatch", 0) == 1
    assert st.jumps >= 1, (
        "dynamic detection must absorb the refused run, not stall it")


# -- 9. corrupted pair-cert-guided restore -----------------------------------

def test_pair_cert_guided_restore_off_by_one_is_caught(monkeypatch):
    """Joint-lattice guidance changes where captures happen, not what a
    jump must prove — the differential harness must kill a corrupted
    restore under pair-certificate guidance exactly as it does under
    dynamic detection."""
    cert = compose_pair("fload", "iload")
    assert not cert.validate(_stream_trace("fload", ILP.MAX),
                             _stream_trace("iload", ILP.MAX))

    baseline = _run_pair(["fload", "iload"], False, None)
    _fastpath.reset_stats()
    stock = _run_pair(["fload", "iload"], True, cert)
    st = _fastpath.stats()
    assert stock == baseline, (
        "stock pair-cert-guided fastpath must be invisible")
    assert st.pair_cert_runs == 1
    assert st.pair_cert_jumps >= 1, (
        "fixture run must jump under joint-lattice guidance")

    _seed_off_by_one_splice(monkeypatch)
    _fastpath.reset_stats()
    mutated = _run_pair(["fload", "iload"], True, cert)
    assert _fastpath.stats().pair_cert_jumps >= 1, (
        "mutant must still jump — a refusal to engage proves nothing")
    assert mutated != baseline, (
        "seeded defect survived under pair-certificate guidance")
