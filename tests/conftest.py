"""Shared pytest configuration for the repro test suite."""


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite the pinned fixtures under tests/golden/fixtures/ "
        "with freshly measured values (review the diff before committing)",
    )
