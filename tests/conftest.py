"""Shared pytest configuration for the repro test suite."""

import os

# Tests construct engines and CLI runs constantly; without this the
# default-on telemetry would scatter .repro-telemetry logs from every
# test process.  Tests that exercise telemetry itself re-enable it (or
# pass an explicit bus/path), which setdefault leaves untouched.
os.environ.setdefault("REPRO_TELEMETRY", "0")


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite the pinned fixtures under tests/golden/fixtures/ "
        "with freshly measured values (review the diff before committing)",
    )
