"""Unit tests for the simulated address space allocator."""

import pytest

from repro.common import AddressSpace, ConfigError


class TestAlloc:
    def test_regions_are_disjoint(self):
        aspace = AddressSpace()
        a = aspace.alloc("a", 100, elem_size=4)
        b = aspace.alloc("b", 64)
        assert a.end <= b.base

    def test_line_alignment(self):
        aspace = AddressSpace(align=64)
        a = aspace.alloc("a", 10, elem_size=2)
        b = aspace.alloc("b", 10, elem_size=2)
        assert a.base % 64 == 0
        assert b.base % 64 == 0
        # Padding: regions never share a 64-byte line.
        assert b.base - a.end >= 0
        assert a.end <= (b.base // 64) * 64

    def test_duplicate_name_rejected(self):
        aspace = AddressSpace()
        aspace.alloc("x", 8)
        with pytest.raises(ConfigError):
            aspace.alloc("x", 8)

    def test_bad_sizes_rejected(self):
        aspace = AddressSpace()
        with pytest.raises(ConfigError):
            aspace.alloc("neg", -8)
        with pytest.raises(ConfigError):
            aspace.alloc("frac", 10, elem_size=8)

    def test_non_power_of_two_alignment_rejected(self):
        with pytest.raises(ConfigError):
            AddressSpace(align=48)

    def test_alloc_elems(self):
        aspace = AddressSpace()
        r = aspace.alloc_elems("v", 16, elem_size=4)
        assert r.nbytes == 64
        assert r.num_elements == 16


class TestRegion:
    def test_addr_of(self):
        aspace = AddressSpace()
        r = aspace.alloc_elems("v", 8, elem_size=8)
        assert r.addr_of(0) == r.base
        assert r.addr_of(3) == r.base + 24

    def test_addr_of_bounds(self):
        aspace = AddressSpace()
        r = aspace.alloc_elems("v", 8)
        with pytest.raises(IndexError):
            r.addr_of(8)
        with pytest.raises(IndexError):
            r.addr_of(-1)

    def test_reverse_lookup(self):
        aspace = AddressSpace()
        a = aspace.alloc("a", 64)
        b = aspace.alloc("b", 64)
        assert aspace.region_of(a.base + 10) is a
        assert aspace.region_of(b.base) is b
        assert aspace.region_of(5) is None

    def test_contains(self):
        aspace = AddressSpace()
        a = aspace.alloc("a", 64)
        assert a.contains(a.base)
        assert not a.contains(a.end)
