"""Tick/cycle conversion tests."""

from repro.common import TICKS_PER_CYCLE, cycles_to_ticks, ticks_to_cycles


def test_half_cycle_is_one_tick():
    assert cycles_to_ticks(0.5) == 1


def test_integer_cycles():
    assert cycles_to_ticks(4) == 4 * TICKS_PER_CYCLE


def test_rounds_up_never_down():
    # A latency can never be modelled shorter than requested.
    assert cycles_to_ticks(0.3) == 1
    assert cycles_to_ticks(1.26) == 3


def test_round_trip():
    assert ticks_to_cycles(cycles_to_ticks(6)) == 6.0
    assert ticks_to_cycles(3) == 1.5
