"""The event bus contract: schema round-trips, atomic multi-process
appends (no torn JSONL records, ever), and the env/path plumbing."""

import json
import multiprocessing
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.telemetry import (
    TELEMETRY_SCHEMA_VERSION,
    TelemetryBus,
    enabled_by_env,
    latest_log,
    new_log_path,
    read_events,
    schema_fingerprint,
    validate_event,
)
from repro.telemetry.bus import ENVELOPE, EVENT_FIELDS, events_by_type


class TestSchema:
    def test_round_trip_every_event(self, tmp_path):
        """Emit one record of every declared event; read back validated."""
        log = tmp_path / "t.jsonl"
        filler = {"cells": 1, "jobs": 1, "cache_enabled": True, "idx": 0,
                  "cell": "stream:iadd/MAX/x1", "queue_wait_s": 0.0,
                  "wall_s": 0.1, "fastpath": {}, "name": "probe",
                  "hits": 0, "misses": 1}
        with TelemetryBus(str(log)) as bus:
            emitted = [bus.emit(ev, **{f: filler[f] for f in fields})
                       for ev, fields in sorted(EVENT_FIELDS.items())]
        read = list(read_events(str(log), validate=True))
        assert read == emitted
        assert all(r["v"] == TELEMETRY_SCHEMA_VERSION for r in read)
        assert all(r["pid"] == os.getpid() for r in read)

    def test_run_id_defaults_to_log_basename(self, tmp_path):
        bus = TelemetryBus(str(tmp_path / "fig2-0001-42.jsonl"))
        assert bus.run_id == "fig2-0001-42"
        bus.close()

    def test_validate_rejects_unknown_event(self):
        with pytest.raises(ValueError, match="unknown event"):
            validate_event({"v": TELEMETRY_SCHEMA_VERSION, "ev": "nope",
                            "ts": 0.0, "pid": 1, "run": "r"})

    def test_validate_rejects_missing_payload_field(self):
        with pytest.raises(ValueError, match="missing field"):
            validate_event({"v": TELEMETRY_SCHEMA_VERSION, "ev": "phase",
                            "ts": 0.0, "pid": 1, "run": "r",
                            "name": "probe"})  # no wall_s

    def test_validate_rejects_version_skew(self):
        with pytest.raises(ValueError, match="schema version"):
            validate_event({"v": TELEMETRY_SCHEMA_VERSION + 1, "ev": "phase",
                            "ts": 0.0, "pid": 1, "run": "r",
                            "name": "probe", "wall_s": 0.0})

    def test_emit_validates_before_writing(self, tmp_path):
        log = tmp_path / "t.jsonl"
        with TelemetryBus(str(log)) as bus:
            with pytest.raises(ValueError):
                bus.emit("phase", name="probe")  # missing wall_s
        assert list(read_events(str(log))) == []

    def test_fingerprint_is_stable_and_schema_sensitive(self):
        fp = schema_fingerprint()
        assert fp == schema_fingerprint()
        assert len(fp) == 64
        # Any edit to the declaration must move the fingerprint — the
        # ledger's drift rule depends on it.
        EVENT_FIELDS["__probe__"] = ("x",)
        try:
            assert schema_fingerprint() != fp
        finally:
            del EVENT_FIELDS["__probe__"]
        assert schema_fingerprint() == fp

    def test_envelope_fields_lead_every_record(self, tmp_path):
        log = tmp_path / "t.jsonl"
        with TelemetryBus(str(log)) as bus:
            bus.emit("phase", name="probe", wall_s=0.0)
        raw = log.read_text().strip()
        keys = list(json.loads(raw))
        assert tuple(keys[:len(ENVELOPE)]) == ENVELOPE


class TestEnvAndPaths:
    def test_enabled_by_default(self):
        assert enabled_by_env({})

    @pytest.mark.parametrize("value", ["0", "false", "OFF", " no "])
    def test_disabled_values(self, value):
        assert not enabled_by_env({"REPRO_TELEMETRY": value})

    @pytest.mark.parametrize("value", ["1", "true", "yes", "on", ""])
    def test_enabled_values(self, value):
        assert enabled_by_env({"REPRO_TELEMETRY": value})

    def test_new_log_paths_sort_in_creation_order(self, tmp_path):
        a = new_log_path(str(tmp_path), prefix="sweep")
        b = new_log_path(str(tmp_path), prefix="sweep")
        assert a != b
        assert sorted([os.path.basename(a), os.path.basename(b)]) == \
            [os.path.basename(a), os.path.basename(b)]

    def test_latest_log_picks_newest(self, tmp_path):
        assert latest_log(str(tmp_path)) is None
        first = new_log_path(str(tmp_path))
        open(first, "w").close()
        second = new_log_path(str(tmp_path))
        open(second, "w").close()
        assert latest_log(str(tmp_path)) == second

    def test_latest_log_missing_dir(self, tmp_path):
        assert latest_log(str(tmp_path / "absent")) is None


class TestReader:
    def test_torn_tail_is_tolerated(self, tmp_path):
        log = tmp_path / "t.jsonl"
        with TelemetryBus(str(log)) as bus:
            bus.emit("phase", name="probe", wall_s=0.1)
            bus.emit("phase", name="store", wall_s=0.2)
        with open(log, "a") as fp:
            fp.write('{"v": 1, "ev": "phase", "na')  # mid-write tail
        events = list(read_events(str(log)))
        assert [e["name"] for e in events] == ["probe", "store"]

    def test_events_by_type_groups(self):
        events = [{"ev": "phase"}, {"ev": "enqueue"}, {"ev": "phase"}]
        by = events_by_type(events)
        assert len(by["phase"]) == 2 and len(by["enqueue"]) == 1


def _hammer(path, run_id, count, label):
    """Child-process emitter for the concurrency property test."""
    with TelemetryBus(path, run_id=run_id) as bus:
        for i in range(count):
            bus.emit("enqueue", idx=i, cell=label)


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="atomic-append property test forks emitters")
class TestNoTornRecords:
    """The load-bearing claim: concurrent emitters from several
    processes interleave *records*, never bytes."""

    @settings(max_examples=8, deadline=None)
    @given(
        procs=st.integers(min_value=2, max_value=4),
        count=st.integers(min_value=5, max_value=40),
        label=st.text(
            alphabet=st.characters(blacklist_categories=("Cs",)),
            min_size=0, max_size=200),
    )
    def test_interleaved_emission_never_tears(self, tmp_path_factory,
                                              procs, count, label):
        log = str(tmp_path_factory.mktemp("bus") / "hammer.jsonl")
        ctx = multiprocessing.get_context("fork")
        children = [
            ctx.Process(target=_hammer, args=(log, f"run-{p}", count, label))
            for p in range(procs)
        ]
        for c in children:
            c.start()
        # The parent emits concurrently too — same contract.
        _hammer(log, "run-parent", count, label)
        for c in children:
            c.join()
        assert all(c.exitcode == 0 for c in children)

        # Every line must parse and validate: a single torn byte would
        # fail json.loads mid-file (read_events would stop early).
        events = list(read_events(log, validate=True))
        assert len(events) == (procs + 1) * count
        per_run = events_by_type(events)["enqueue"]
        assert len(per_run) == len(events)
        for run in [f"run-{p}" for p in range(procs)] + ["run-parent"]:
            mine = [e for e in events if e["run"] == run]
            assert [e["idx"] for e in mine] == list(range(count))
            assert all(e["cell"] == label for e in mine)
