"""The perf-regression ledger's gate rules, against scratch ledgers.

``benchmarks/ledger.py`` is a script-style module (the benchmarks
directory is not a package), so it is imported here by path.
"""

import importlib.util
import json
import pathlib
import sys

import pytest

from repro.telemetry import TELEMETRY_SCHEMA_VERSION, schema_fingerprint

_LEDGER_PY = pathlib.Path(__file__).parents[2] / "benchmarks" / "ledger.py"


@pytest.fixture(scope="module")
def ledger():
    spec = importlib.util.spec_from_file_location("_test_ledger", _LEDGER_PY)
    mod = importlib.util.module_from_spec(spec)
    sys.modules["_test_ledger"] = mod
    spec.loader.exec_module(mod)
    yield mod
    del sys.modules["_test_ledger"]


def _entry(ledger, path, kind, data, host="host-a", **meta):
    return ledger.append(kind, data, ledger_path=path, host=host,
                         git_sha="0" * 40, **meta)


class TestAppendAndRead:
    def test_round_trip(self, ledger, tmp_path):
        path = tmp_path / "L.jsonl"
        entry = _entry(ledger, path, "bench_core", {"total_seconds": 1.5})
        read = ledger.read(path)
        assert read == [entry]
        assert read[0]["ledger_schema_version"] == ledger.LEDGER_SCHEMA_VERSION
        assert read[0]["telemetry_schema_version"] == TELEMETRY_SCHEMA_VERSION
        assert read[0]["telemetry_fingerprint"] == schema_fingerprint()

    def test_unknown_kind_rejected(self, ledger, tmp_path):
        with pytest.raises(ValueError, match="unknown ledger kind"):
            ledger.append("bench_nope", {}, ledger_path=tmp_path / "L.jsonl")

    def test_missing_ledger_reads_empty(self, ledger, tmp_path):
        assert ledger.read(tmp_path / "absent.jsonl") == []


class TestCheckRules:
    def test_empty_ledger_is_ok(self, ledger, tmp_path):
        ok, lines = ledger.check(tmp_path / "absent.jsonl")
        assert ok and "nothing to check" in lines[0]

    def test_consistent_schema_passes(self, ledger, tmp_path):
        path = tmp_path / "L.jsonl"
        _entry(ledger, path, "bench_core", {"total_seconds": 1.0})
        ok, lines = ledger.check(path)
        assert ok
        assert any(line.startswith("ok   schema") for line in lines)

    def test_schema_drift_without_bump_fails(self, ledger, tmp_path):
        path = tmp_path / "L.jsonl"
        _entry(ledger, path, "bench_core", {"total_seconds": 1.0})
        ok, lines = ledger.check(path, fingerprint="f" * 64)
        assert not ok
        assert any("FAIL schema" in line and "without a" in line
                   for line in lines)

    def test_schema_drift_with_bump_passes(self, ledger, tmp_path):
        # A version bump legitimizes a moved fingerprint: hand-write an
        # entry recorded under the previous schema version.
        path = tmp_path / "L.jsonl"
        entry = ledger.make_entry("bench_core", {"total_seconds": 1.0},
                                  git_sha="0" * 40, host="host-a")
        entry["telemetry_schema_version"] = TELEMETRY_SCHEMA_VERSION - 1
        entry["telemetry_fingerprint"] = "e" * 64
        path.write_text(json.dumps(entry) + "\n")
        ok, _ = ledger.check(path)
        assert ok

    def test_same_host_regression_fails(self, ledger, tmp_path):
        path = tmp_path / "L.jsonl"
        _entry(ledger, path, "bench_core", {"total_seconds": 10.0})
        _entry(ledger, path, "bench_core", {"total_seconds": 13.0})
        ok, lines = ledger.check(path)
        assert not ok                          # 1.3x > the 1.25x band
        assert any("FAIL bench_core" in line for line in lines)
        # The gate always compares against the *previous* entry, so a
        # recovery run turns the trajectory green again.
        _entry(ledger, path, "bench_core", {"total_seconds": 11.0})
        ok, _ = ledger.check(path)
        assert ok

    def test_within_tolerance_passes(self, ledger, tmp_path):
        path = tmp_path / "L.jsonl"
        _entry(ledger, path, "bench_core", {"total_seconds": 10.0})
        _entry(ledger, path, "bench_core", {"total_seconds": 12.0})
        ok, lines = ledger.check(path)
        assert ok
        assert any("ok   bench_core: wall 12.000s vs 10.000s" in line
                   for line in lines)

    def test_cross_host_is_never_gated(self, ledger, tmp_path):
        path = tmp_path / "L.jsonl"
        _entry(ledger, path, "bench_core", {"total_seconds": 1.0},
               host="host-a")
        _entry(ledger, path, "bench_core", {"total_seconds": 100.0},
               host="host-b")
        ok, lines = ledger.check(path)
        assert ok
        assert any("no same-host baseline" in line for line in lines)

    def test_sweep_overhead_band(self, ledger, tmp_path):
        path = tmp_path / "L.jsonl"
        _entry(ledger, path, "bench_sweep",
               {"seconds_on": 1.0, "overhead_pct": 2.0})
        ok, lines = ledger.check(path)
        assert ok and any("telemetry overhead 2.0%" in line for line in lines)
        _entry(ledger, path, "bench_sweep",
               {"seconds_on": 1.0,
                "overhead_pct": ledger.OVERHEAD_FAIL_PCT + 5.0})
        ok, lines = ledger.check(path)
        assert not ok
        assert any("FAIL bench_sweep" in line for line in lines)

    def test_serve_warm_hit_gate(self, ledger, tmp_path):
        path = tmp_path / "L.jsonl"
        _entry(ledger, path, "bench_serve",
               {"total_seconds": 1.0, "warm": {"p50_ms": 1.0}})
        ok, lines = ledger.check(path)
        assert ok
        assert any("no same-host warm-hit baseline" in line
                   for line in lines)
        # Within tolerance: passes with the comparison rendered.
        _entry(ledger, path, "bench_serve",
               {"total_seconds": 1.0, "warm": {"p50_ms": 1.2}})
        ok, lines = ledger.check(path)
        assert ok
        assert any("ok   bench_serve: warm-hit p50 1.200ms vs 1.000ms"
                   in line for line in lines)
        # Beyond tolerance: fails.
        _entry(ledger, path, "bench_serve",
               {"total_seconds": 1.0, "warm": {"p50_ms": 2.0}})
        ok, lines = ledger.check(path)
        assert not ok
        assert any("FAIL bench_serve: warm-hit p50 2.000ms" in line
                   for line in lines)

    def test_serve_warm_hit_cross_host_never_gated(self, ledger,
                                                   tmp_path):
        path = tmp_path / "L.jsonl"
        _entry(ledger, path, "bench_serve",
               {"total_seconds": 1.0, "warm": {"p50_ms": 1.0}},
               host="host-a")
        _entry(ledger, path, "bench_serve",
               {"total_seconds": 1.0, "warm": {"p50_ms": 50.0}},
               host="host-b")
        ok, lines = ledger.check(path)
        assert ok
        assert any("no same-host warm-hit baseline" in line
                   for line in lines)

    def test_regression_gate_uses_headline_wall(self, ledger, tmp_path):
        # bench_sweep entries gate on seconds_on (no total_seconds).
        path = tmp_path / "L.jsonl"
        _entry(ledger, path, "bench_sweep",
               {"seconds_on": 4.0, "overhead_pct": 1.0})
        _entry(ledger, path, "bench_sweep",
               {"seconds_on": 9.0, "overhead_pct": 1.0})
        ok, lines = ledger.check(path)
        assert not ok
        assert any("FAIL bench_sweep: wall 9.000s" in line for line in lines)


class TestShowAndCLI:
    def test_show_renders_rows(self, ledger, tmp_path):
        path = tmp_path / "L.jsonl"
        _entry(ledger, path, "bench_model", {"total_seconds": 1.18})
        text = ledger.show(path)
        assert "bench_model" in text and "1.180s" in text and "host-a" in text

    def test_show_empty(self, ledger, tmp_path):
        assert "empty" in ledger.show(tmp_path / "absent.jsonl")

    def test_main_check_exit_codes(self, ledger, tmp_path, capsys):
        path = tmp_path / "L.jsonl"
        _entry(ledger, path, "bench_core", {"total_seconds": 10.0})
        assert ledger.main(["--check", "--ledger", str(path)]) == 0
        _entry(ledger, path, "bench_core", {"total_seconds": 99.0})
        assert ledger.main(["--check", "--ledger", str(path)]) == 1
        assert "FAIL bench_core" in capsys.readouterr().out
