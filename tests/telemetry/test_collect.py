"""Collector math over synthetic event lists (no clocks, no files)."""

import pytest

from repro.telemetry.bus import TELEMETRY_SCHEMA_VERSION
from repro.telemetry.collect import render_summary, summarize


def _ev(ev, ts, pid=1, run="r", **fields):
    rec = {"v": TELEMETRY_SCHEMA_VERSION, "ev": ev, "ts": ts, "pid": pid,
           "run": run}
    rec.update(fields)
    return rec


def _batch():
    """One 4-cell sweep: 1 cache hit, 3 simulated on 2 workers; the
    cell on pid 200 is a straggler (9.5s against a 2.0s median)."""
    fp_a = {"jumps": 2, "ticks_skipped": 80, "ticks_total": 100,
            "stand_downs": {"horizon": 1}}
    fp_b = {"jumps": 1, "ticks_skipped": 10, "ticks_total": 100}
    return [
        _ev("sweep-begin", 0.0, cells=4, jobs=2, cache_enabled=True),
        _ev("cache-hit", 0.1, idx=0, cell="hit"),
        _ev("enqueue", 0.1, idx=1, cell="c1"),
        _ev("enqueue", 0.1, idx=2, cell="c2"),
        _ev("enqueue", 0.1, idx=3, cell="c3"),
        _ev("phase", 0.2, name="probe", wall_s=0.1),
        _ev("cell-begin", 1.0, pid=100, idx=1, cell="c1", queue_wait_s=0.5),
        _ev("cell-end", 2.0, pid=100, idx=1, cell="c1", wall_s=1.0,
            fastpath=fp_a),
        _ev("cell-begin", 2.0, pid=100, idx=2, cell="c2", queue_wait_s=0.0),
        _ev("cell-end", 4.0, pid=100, idx=2, cell="c2", wall_s=2.0,
            fastpath=fp_b),
        _ev("cell-begin", 1.0, pid=200, idx=3, cell="c3", queue_wait_s=0.5),
        _ev("cell-end", 10.5, pid=200, idx=3, cell="c3", wall_s=9.5,
            fastpath={}),
        _ev("phase", 10.6, name="execute", wall_s=10.0),
        _ev("sweep-end", 10.6, cells=4, hits=1, misses=3, wall_s=10.6),
    ]


class TestSummarize:
    def test_cell_accounting(self):
        c = summarize(_batch())["cells"]
        assert c == {"total": 4, "done": 4, "hits": 1, "simulated": 3,
                     "in_flight": 0, "enqueued": 3, "hit_rate": 0.25}

    def test_wall_and_phases(self):
        s = summarize(_batch())
        assert s["wall_s"] == 10.6          # from sweep-end
        assert s["phases"] == {"execute": 10.0, "probe": 0.1}
        assert s["jobs"] == 2
        assert s["eta_s"] is None           # nothing left to do

    def test_worker_utilization_over_execute_span(self):
        w = summarize(_batch())["workers"]
        # Span: first dispatch at ts 0.5 (begin 1.0 minus 0.5 wait) to
        # last completion at ts 10.5 → 10.0 s.
        assert w[100]["cells"] == 2
        assert w[100]["busy_s"] == pytest.approx(3.0)
        assert w[100]["utilization"] == pytest.approx(0.30)
        assert w[100]["queue_wait_s"] == pytest.approx(0.5)
        assert w[200]["utilization"] == pytest.approx(0.95)

    def test_slowest_and_stragglers(self):
        s = summarize(_batch())
        assert [r["wall_s"] for r in s["slowest"]] == [9.5, 2.0, 1.0]
        assert [r["cell"] for r in s["stragglers"]] == ["c3"]
        assert s["stragglers"][0]["median_s"] == 2.0

    def test_fastpath_merge_and_coverage(self):
        s = summarize(_batch())
        fp = s["fastpath"]
        assert fp["jumps"] == 3
        assert fp["ticks_skipped"] == 90 and fp["ticks_total"] == 200
        assert fp["stand_downs"] == {"horizon": 1}
        assert s["fastpath_coverage"] == pytest.approx(0.45)

    def test_live_view_eta(self):
        # Drop the sweep-end and two of the three completions: 2 cells
        # remain at a 1.0 s observed mean over 2 workers → ETA 1.0 s.
        live = [e for e in _batch()
                if e["ev"] != "sweep-end" and not (
                    e["ev"] in ("cell-begin", "cell-end") and e["idx"] != 1)]
        s = summarize(live)
        assert s["cells"]["done"] == 2 and s["cells"]["total"] == 4
        assert s["eta_s"] == pytest.approx(1.0)
        # Without a sweep-end the wall falls back to the event span.
        assert s["wall_s"] == pytest.approx(10.6)

    def test_in_flight(self):
        live = [e for e in _batch() if not (
            e["ev"] == "cell-end" and e["idx"] == 3)][:-2]
        assert summarize(live)["cells"]["in_flight"] == 1

    def test_empty_stream(self):
        s = summarize([])
        assert s["cells"]["total"] == 0 and s["cells"]["hit_rate"] == 0.0
        assert s["wall_s"] == 0.0 and s["eta_s"] is None
        assert s["workers"] == {} and s["fastpath"] == {}

    def test_multiple_batches_accumulate(self):
        twice = _batch() + _batch()
        s = summarize(twice)
        assert s["cells"]["total"] == 8 and s["cells"]["done"] == 8
        assert s["wall_s"] == pytest.approx(21.2)
        assert s["phases"]["execute"] == pytest.approx(20.0)


class TestRender:
    def test_render_mentions_the_load_bearing_numbers(self):
        text = render_summary(summarize(_batch()))
        assert "4/4 done" in text
        assert "25% hit rate" in text
        assert "fastpath 45.0% ticks skipped" in text
        assert "stand-downs: horizon=1" in text
        assert "worker   pid 100" in text and "util 30%" in text
        assert "slowest cells:" in text
        assert "stragglers" in text and "c3" in text

    def test_render_empty(self):
        text = render_summary(summarize([]))
        assert "(empty)" in text and "0/0 done" in text
