"""The live viewer: incremental following, partial-line buffering, and
the single-frame (--once) rendering path the CLI test rides."""

import io
import json

from repro.telemetry.bus import TELEMETRY_SCHEMA_VERSION, TelemetryBus
from repro.telemetry.top import LogFollower, run_top


def _write(path, events):
    with TelemetryBus(str(path)) as bus:
        for ev, fields in events:
            bus.emit(ev, **fields)


_SWEEP = [
    ("sweep-begin", {"cells": 2, "jobs": 1, "cache_enabled": False}),
    ("enqueue", {"idx": 0, "cell": "c0"}),
    ("enqueue", {"idx": 1, "cell": "c1"}),
    ("cell-begin", {"idx": 0, "cell": "c0", "queue_wait_s": 0.0}),
    ("cell-end", {"idx": 0, "cell": "c0", "wall_s": 0.5, "fastpath": {}}),
    ("cell-begin", {"idx": 1, "cell": "c1", "queue_wait_s": 0.0}),
    ("cell-end", {"idx": 1, "cell": "c1", "wall_s": 0.7, "fastpath": {}}),
    ("sweep-end", {"cells": 2, "hits": 0, "misses": 2, "wall_s": 1.2}),
]


class TestLogFollower:
    def test_incremental_polling(self, tmp_path):
        log = tmp_path / "t.jsonl"
        _write(log, _SWEEP[:3])
        follower = LogFollower(str(log))
        assert [e["ev"] for e in follower.poll()] == [
            "sweep-begin", "enqueue", "enqueue"]
        assert follower.poll() == []
        _write(log, _SWEEP[3:])
        assert [e["ev"] for e in follower.poll()] == [
            "cell-begin", "cell-end", "cell-begin", "cell-end", "sweep-end"]
        follower.close()

    def test_partial_line_stays_buffered(self, tmp_path):
        log = tmp_path / "t.jsonl"
        record = json.dumps({"v": TELEMETRY_SCHEMA_VERSION, "ev": "phase",
                             "ts": 0.0, "pid": 1, "run": "r",
                             "name": "probe", "wall_s": 0.1})
        log.write_text(record + "\n" + record[:13])
        follower = LogFollower(str(log))
        assert len(follower.poll()) == 1      # the torn tail is held back
        with open(log, "a") as fp:
            fp.write(record[13:] + "\n")
        done = follower.poll()                # ...and completes next poll
        assert len(done) == 1 and done[0]["name"] == "probe"
        follower.close()

    def test_malformed_line_is_skipped(self, tmp_path):
        log = tmp_path / "t.jsonl"
        log.write_text('not json\n{"ev": "phase", "name": "x"}\n')
        follower = LogFollower(str(log))
        assert [e["ev"] for e in follower.poll()] == ["phase"]
        follower.close()


class TestRunTop:
    def test_once_renders_final_frame(self, tmp_path):
        log = tmp_path / "t.jsonl"
        _write(log, _SWEEP)
        out = io.StringIO()
        assert run_top(path=str(log), once=True, out=out) == 0
        text = out.getvalue()
        assert "repro top" in text and "(final)" in text
        assert "2/2 done" in text
        assert "slowest cells:" in text

    def test_once_without_any_log(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(tmp_path / "empty"))
        assert run_top(once=True) == 2
        assert "no telemetry log" in capsys.readouterr().err

    def test_directory_override_finds_daemon_spool(self, tmp_path):
        # The serve daemon spools under its own --telemetry-dir; the
        # follower must find the newest log there without touching the
        # default directory or the environment.
        spool = tmp_path / "serve-spool"
        _write(spool / "serve-001.jsonl", _SWEEP)
        out = io.StringIO()
        assert run_top(once=True, out=out, directory=str(spool)) == 0
        assert "2/2 done" in out.getvalue()

    def test_directory_override_without_logs_reports_it(self, tmp_path,
                                                        capsys):
        missing = tmp_path / "nowhere"
        assert run_top(once=True, directory=str(missing)) == 2
        err = capsys.readouterr().err
        assert "no telemetry log" in err and str(missing) in err

    def test_follow_exits_after_quiet_sweep_end(self, tmp_path):
        log = tmp_path / "t.jsonl"
        _write(log, _SWEEP)
        out = io.StringIO()
        assert run_top(path=str(log), interval=0.01, out=out) == 0
        assert "2/2 done" in out.getvalue()

    def test_follow_honors_duration_without_sweep_end(self, tmp_path):
        log = tmp_path / "t.jsonl"
        _write(log, _SWEEP[:-1])              # still "live"
        out = io.StringIO()
        assert run_top(path=str(log), interval=0.01, duration=0.05,
                       out=out) == 0
