"""Telemetry is a pure observer: reports are byte-identical with the
bus on vs off, and the event stream the engine emits is a faithful,
schema-valid account of what the sweep did."""

import json

import pytest

from repro.core import coexec_sweep, fig1_sweep, table1_rows
from repro.core.streams import measure_stream_cpi
from repro.cpu import fastpath as _fastpath
from repro.cpu.config import CoreConfig
from repro.isa.streams import ILP
from repro.mem.config import MemConfig
from repro.observe import build_report, strip_volatile
from repro.sweep import ResultCache, SweepEngine
from repro.telemetry import TELEMETRY_SCHEMA_VERSION, TelemetryBus, read_events
from repro.telemetry.bus import events_by_type

H = 20_000


def _bytes(report: dict) -> str:
    return json.dumps(strip_volatile(report), indent=2)


def _report(kind, results, engine):
    # Mirrors the CLI: a "telemetry" section is attached only when a
    # bus is live — and strip_volatile removes it, like wall times.
    telemetry = None
    if engine.telemetry is not None:
        telemetry = {"schema_version": TELEMETRY_SCHEMA_VERSION,
                     "log": engine.telemetry.path,
                     "run": engine.telemetry.run_id}
    return build_report(kind, results, core_config=CoreConfig(),
                        mem_config=MemConfig(),
                        sweep=engine.stats.to_dict(), telemetry=telemetry)


def _fig1(engine):
    return _report("fig1", fig1_sweep(streams=("iadd", "fadd"),
                                      horizon_ticks=H, engine=engine),
                   engine)


def _fig2(engine):
    return _report("fig2", coexec_sweep([("iadd", "imul")],
                                        solo_horizon_ticks=H,
                                        pair_horizon_ticks=H,
                                        engine=engine), engine)


def _table1(engine):
    return _report("table1", table1_rows(("mm",), {"mm": {"n": 16}},
                                         engine=engine), engine)


@pytest.mark.parametrize("make_report", [_fig1, _fig2, _table1],
                         ids=["fig1", "fig2", "table1"])
@pytest.mark.parametrize("jobs", [1, 2], ids=["serial", "parallel"])
def test_sweep_reports_identical_on_vs_off(tmp_path, make_report, jobs):
    off = make_report(SweepEngine(jobs=jobs))
    with TelemetryBus(str(tmp_path / "on.jsonl")) as bus:
        on = make_report(SweepEngine(jobs=jobs, telemetry=bus))
    assert _bytes(off) == _bytes(on)
    # The raw reports differ only by the volatile telemetry section.
    assert "telemetry" in on and "telemetry" not in off


def test_stream_report_bytes_are_deterministic(tmp_path):
    """Single-run reports carry a non-volatile fastpath section: the
    counters are pure simulation state, so two runs — one with a bus
    merely existing — must produce identical raw bytes."""

    def run():
        fp = _fastpath.reset_stats()
        result = measure_stream_cpi("iadd", ILP.MAX, 2, horizon_ticks=H)
        return build_report("stream", [result], core_config=CoreConfig(),
                            mem_config=MemConfig(),
                            fastpath=fp.to_dict())

    first = run()
    with TelemetryBus(str(tmp_path / "idle.jsonl")):
        second = run()
    assert json.dumps(first, indent=2) == json.dumps(second, indent=2)
    assert first["fastpath"]["jumps"] > 0


def test_cache_hits_do_not_change_stripped_bytes(tmp_path):
    cache = ResultCache(tmp_path / "c")
    cold = _fig1(SweepEngine(cache=cache))
    with TelemetryBus(str(tmp_path / "warm.jsonl")) as bus:
        warm_engine = SweepEngine(cache=ResultCache(tmp_path / "c"),
                                  telemetry=bus)
        warm = _fig1(warm_engine)
    assert _bytes(cold) == _bytes(warm)
    assert warm_engine.stats.hits == 12


@pytest.mark.parametrize("jobs", [1, 2], ids=["serial", "parallel"])
def test_event_stream_accounts_for_every_cell(tmp_path, jobs):
    log = tmp_path / "ev.jsonl"
    with TelemetryBus(str(log)) as bus:
        engine = SweepEngine(jobs=jobs, telemetry=bus)
        fig1_sweep(streams=("iadd",), horizon_ticks=H, engine=engine)
    events = list(read_events(str(log), validate=True))
    by = events_by_type(events)
    n = engine.stats.cells
    assert n == 6
    assert len(by["sweep-begin"]) == len(by["sweep-end"]) == 1
    assert len(by["enqueue"]) == len(by["cell-begin"]) == \
        len(by["cell-end"]) == n
    assert "cache-hit" not in by
    end = by["sweep-end"][0]
    assert (end["cells"], end["hits"], end["misses"]) == (n, 0, n)
    assert {e["name"] for e in by["phase"]} == {
        "preflight", "probe", "execute", "store", "oracle"}
    # Per-cell spans carry the fastpath delta and a sane queue wait.
    assert all(e["fastpath"]["runs"] >= 1 for e in by["cell-end"])
    assert all(e["queue_wait_s"] >= 0.0 for e in by["cell-begin"])
    # Submission indices round-trip.
    assert sorted(e["idx"] for e in by["cell-end"]) == list(range(n))


def test_warm_sweep_emits_hits_not_cell_spans(tmp_path):
    cache_dir = tmp_path / "c"
    # Populate cold, then replay warm with the bus attached.
    fig1_sweep(streams=("iadd",), horizon_ticks=H,
               engine=SweepEngine(cache=ResultCache(cache_dir)))
    log = tmp_path / "warm.jsonl"
    with TelemetryBus(str(log)) as bus:
        warm = SweepEngine(cache=ResultCache(cache_dir), telemetry=bus)
        fig1_sweep(streams=("iadd",), horizon_ticks=H, engine=warm)
    by = events_by_type(list(read_events(str(log), validate=True)))
    assert len(by["cache-hit"]) == 6
    assert "enqueue" not in by and "cell-end" not in by
    end = by["sweep-end"][0]
    assert (end["hits"], end["misses"]) == (6, 0)
