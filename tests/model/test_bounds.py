"""Unit tests for the static CPI bound analyzer (repro.model.bounds)."""

import dataclasses

import pytest

from repro.common.errors import ConfigError
from repro.cpu.config import CoreConfig, OpTiming
from repro.isa.instr import Instr
from repro.isa.opcodes import Op
from repro.isa.streams import ILP, StreamSpec
from repro.model import MODEL_STREAMS, stream_bounds, weighted_critical_path


class TestIntervalShape:
    @pytest.mark.parametrize("name", MODEL_STREAMS)
    @pytest.mark.parametrize("ilp", list(ILP))
    def test_solo_interval_is_well_formed(self, name, ilp):
        b = stream_bounds(name, ilp=ilp)
        assert 0.0 < b.lower <= b.upper
        assert b.threads == 1 and b.sibling is None
        assert b.binding.startswith("bound by")

    @pytest.mark.parametrize("name", MODEL_STREAMS)
    def test_dual_widens_only_the_upper_end(self, name):
        solo = stream_bounds(name, ilp=ILP.MAX)
        dual = stream_bounds(name, ilp=ILP.MAX, sibling=name)
        assert dual.threads == 2 and dual.sibling == name
        # Co-execution can never make the provable floor higher than
        # the ceiling, and the ceiling can only grow.
        assert dual.upper >= solo.upper
        assert dual.lower <= dual.upper

    def test_min_ilp_floor_dominated_by_chain(self):
        b = stream_bounds("idiv", ilp=ILP.MIN)
        assert "RAW dependence-chain" in b.binding
        # IDIV latency 96t on a serial chain: 48 cycles, minus slack.
        assert b.lower == pytest.approx(48.0 * 0.98)

    def test_fdiv_binding_names_the_nonpipelined_divider(self):
        b = stream_bounds("fdiv", ilp=ILP.MAX)
        assert b.binding == "bound by non-pipelined divider interval 76t"
        assert b.lower == pytest.approx(38.0 * 0.98)

    def test_iadd_binding_is_frontend_bandwidth(self):
        b = stream_bounds("iadd", ilp=ILP.MAX)
        assert "fetch bandwidth" in b.binding
        # 3 uops per 2 ticks -> 1/3 cycle per instruction.
        assert b.lower == pytest.approx((2.0 / 3.0) / 2.0 * 0.98)

    def test_fmul_max_floor_is_fpexec_interval(self):
        b = stream_bounds("fmul", ilp=ILP.MAX)
        assert "fpexec" in b.binding
        assert b.lower == pytest.approx(2.0 * 0.98)


class TestMeasuredAnchors:
    """Spot anchors from the calibrated simulator (production horizon)."""

    @pytest.mark.parametrize("name,ilp,measured", [
        ("fadd", ILP.MIN, 4.000),
        ("fadd", ILP.MAX, 0.980),
        ("fmul", ILP.MAX, 2.000),
        ("fdiv", ILP.MIN, 37.992),
        ("idiv", ILP.MIN, 47.981),
        ("iadd", ILP.MAX, 0.333),
        ("fadd-mul", ILP.MED, 1.750),
    ])
    def test_known_solo_cpis_are_contained(self, name, ilp, measured):
        b = stream_bounds(name, ilp=ilp)
        assert b.contains(measured)


class TestCriticalPath:
    def test_serial_chain_prices_out_latencies(self):
        cfg = CoreConfig()
        instrs = [Instr.arith(Op.FADD, dst=1, src=1, site=0)
                  for _ in range(8)]
        # 8 chained FADDs at 8t latency each -> 8t per instruction.
        assert weighted_critical_path(instrs, cfg) == pytest.approx(8.0)

    def test_independent_ops_have_no_chain(self):
        cfg = CoreConfig()
        instrs = [Instr.arith(Op.FADD, dst=i + 1, src=100 + i, site=0)
                  for i in range(8)]
        assert weighted_critical_path(instrs, cfg) == pytest.approx(1.0)

    def test_empty_window(self):
        assert weighted_critical_path([], CoreConfig()) == 0.0


class TestErrors:
    def test_unknown_stream_rejected(self):
        with pytest.raises(ConfigError, match="unknown stream"):
            stream_bounds("warp-drive")

    def test_unknown_sibling_rejected(self):
        with pytest.raises(ConfigError, match="unknown sibling"):
            stream_bounds("fadd", sibling="warp-drive")

    def test_unboundable_target_reports_as_error_finding(self):
        # CoreConfig itself refuses to drop a timing, so the model's
        # cannot-bound guard surfaces through the check pass: a
        # spec that cannot be unrolled cannot be bounded.
        from repro.model import stream_model_findings

        good = stream_model_findings(StreamSpec("fadd", ilp=ILP.MAX))
        assert len(good) == 1 and good[0].severity.name == "INFO"
        fake = type("FakeSpec", (), {"name": "warp-drive", "ilp": ILP.MAX})()
        bad = stream_model_findings(fake)
        assert bad[0].severity.name == "ERROR"
        assert "cannot bound" in bad[0].message


class TestSerialization:
    def test_to_dict_round_trips_the_interval(self):
        b = stream_bounds("fdiv", ilp=ILP.MED, sibling="fdiv")
        d = b.to_dict()
        assert d["stream"] == "fdiv" and d["ilp"] == "MED"
        assert d["threads"] == 2 and d["sibling"] == "fdiv"
        assert d["lower_cpi"] == pytest.approx(b.lower, abs=1e-6)
        assert d["upper_cpi"] == pytest.approx(b.upper, abs=1e-6)
        assert "raw-chain" in d["lower_terms_ticks"]

    def test_contains_respects_atol(self):
        b = stream_bounds("fadd", ilp=ILP.MIN)
        assert not b.contains(b.lower - 0.05)
        assert b.contains(b.lower - 0.05, atol=0.1)

    def test_custom_timing_moves_the_bound(self):
        cfg = CoreConfig()
        slowed = dict(cfg.timings)
        slowed[Op.FADD] = OpTiming(80, 40)
        slow_cfg = dataclasses.replace(cfg, timings=slowed)
        fast = stream_bounds("fadd", ilp=ILP.MIN)
        slow = stream_bounds(StreamSpec("fadd", ilp=ILP.MIN),
                             core_config=slow_cfg)
        assert slow.lower == pytest.approx(40.0 * 0.98)
        assert slow.lower > fast.upper
