"""Property: any legal (stream, ILP, TLP) simulation obeys its bound.

Hypothesis draws legal fig.-1 configurations at random; each is
simulated serially through the sweep engine (with the oracle doing the
actual containment assertion) and replayed from a warm cache, which
must reproduce the identical result and pass the oracle again.
``derandomize=True`` keeps the suite deterministic, matching the
repo's reproducibility contract.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.isa.streams import ILP
from repro.model import MODEL_STREAMS, stream_bounds
from repro.sweep import ResultCache, SweepEngine
from repro.sweep.cells import stream_cell

configs = st.tuples(
    st.sampled_from(sorted(MODEL_STREAMS)),
    st.sampled_from([ILP.MIN, ILP.MED, ILP.MAX]),
    st.sampled_from([1, 2]),
)


@settings(max_examples=6, deadline=None, derandomize=True,
          suppress_health_check=[HealthCheck.too_slow])
@given(configs)
def test_simulated_cpi_within_static_interval(tmp_path_factory, cfg):
    name, ilp, threads = cfg
    cache_dir = tmp_path_factory.mktemp("model-prop")
    engine = SweepEngine(jobs=1, cache=ResultCache(str(cache_dir)))
    cell = stream_cell(name, ilp, threads)

    # Cold run: the engine's oracle raises on any violation, but assert
    # containment explicitly so this test stands on its own.
    (cold,) = engine.run([cell])
    sibling = name if threads == 2 else None
    bound = stream_bounds(name, ilp=ilp, sibling=sibling)
    assert bound.contains(cold.cpi, atol=1e-9), (cfg, cold.cpi, bound)

    # Warm-cache replay: byte-identical result, oracle green again.
    (warm,) = engine.run([cell])
    assert warm == cold
    assert engine.stats.hits >= 1
