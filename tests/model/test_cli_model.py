"""The ``repro model`` CLI verb."""

import json

from repro.cli import main
from repro.model import MODEL_SCHEMA_VERSION


class TestModelJson:
    def test_emits_all_fig1_and_fig2_cells(self, capsys):
        rc = main(["model", "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert doc["schema_version"] == MODEL_SCHEMA_VERSION
        assert doc["kind"] == "model"
        assert doc["generator"] == "repro.model"
        # 11 paper streams x 3 ILP levels, solo + self-pair dual each.
        assert len(doc["streams"]) == 33
        for entry in doc["streams"]:
            for mode in ("solo", "dual"):
                b = entry[mode]
                assert b["lower_cpi"] <= b["upper_cpi"]
                assert b["binding"].startswith("bound by")
        # fig.-2 panels a (15) + b (15) + c (9) at each ILP level.
        per_ilp = {}
        for p in doc["pairs"]:
            per_ilp[p["ilp"]] = per_ilp.get(p["ilp"], 0) + 1
        assert per_ilp == {"MIN": 39, "MED": 39, "MAX": 39}

    def test_single_ilp_restriction(self, capsys):
        rc = main(["model", "--ilp", "max", "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert len(doc["streams"]) == 11
        assert len(doc["pairs"]) == 39
        assert {p["ilp"] for p in doc["pairs"]} == {"MAX"}

    def test_slowdown_envelopes_are_ordered(self, capsys):
        main(["model", "--ilp", "max", "--json"])
        doc = json.loads(capsys.readouterr().out)
        for p in doc["pairs"]:
            lo, hi = p["slowdown_a"]
            assert lo <= hi
            lo, hi = p["slowdown_b"]
            assert lo <= hi


class TestModelHuman:
    def test_tables_name_binding_constraints(self, capsys):
        rc = main(["model", "--ilp", "max"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "provable CPI intervals" in out
        assert "bound by non-pipelined divider interval 76t" in out
        assert "slowdown envelopes" in out
        assert "serializes on shared fpdiv (non-pipelined divider)" in out

    def test_report_file(self, tmp_path, capsys):
        path = tmp_path / "model.json"
        rc = main(["model", "--ilp", "min", "--report", str(path)])
        capsys.readouterr()
        assert rc == 0
        doc = json.loads(path.read_text())
        assert doc["kind"] == "model"
        assert len(doc["streams"]) == 11
