"""The differential oracle: simulated results vs. static intervals."""

import dataclasses
import json

import pytest

from repro.check.findings import Severity
from repro.common.errors import ModelViolation
from repro.core.streams import StreamCPIResult
from repro.cpu.config import CoreConfig, OpTiming
from repro.isa.opcodes import Op
from repro.isa.streams import ILP
from repro.model import oracle_cells, validate_cells
from repro.model.oracle import cpi_margin
from repro.model.bounds import stream_bounds
from repro.sweep import SweepEngine
from repro.sweep import engine as engine_mod
from repro.sweep.cells import SweepCell, pair_cell, runner_for, stream_cell


def _result(cell, cpi, instrs=10_000):
    c = cell.config
    return StreamCPIResult(
        stream=c["stream"], ilp=ILP[c["ilp"]], threads=c["threads"],
        cpi=cpi, cumulative_ipc=c["threads"] / cpi,
        cycles=int(cpi * instrs), instrs_per_thread=instrs)


class TestValidateCells:
    def test_contained_result_is_silent(self):
        cell = stream_cell("fadd", ILP.MIN, 1)
        assert validate_cells([cell], [_result(cell, 4.0)]) == []

    def test_impossibly_fast_result_is_an_error(self):
        cell = stream_cell("fadd", ILP.MIN, 1)
        findings = validate_cells([cell], [_result(cell, 0.5)])
        assert len(findings) == 1
        f = findings[0]
        assert f.check == "model" and f.severity is Severity.ERROR
        assert "below lower" in f.message
        assert f.data["contained"] is False

    def test_impossibly_slow_result_is_an_error(self):
        cell = stream_cell("iadd", ILP.MAX, 1)
        findings = validate_cells([cell], [_result(cell, 50.0)])
        assert len(findings) == 1
        assert "above upper" in findings[0].message

    def test_none_results_are_skipped(self):
        cell = stream_cell("fadd", ILP.MIN, 1)
        assert validate_cells([cell], [None]) == []

    def test_unknown_cell_kind_is_skipped(self):
        cell = SweepCell(kind="exotic", config={})
        assert validate_cells([cell], [object()]) == []

    def test_pair_utilization_law(self):
        # Two fdiv streams at CPI 1.0 would need the single divider to
        # initiate 76-tick operations ~38x faster than it can.
        cell = pair_cell("fdiv", "fdiv", ILP.MAX)
        findings = validate_cells([cell], [(1.0, 1.0)])
        assert any("issue bandwidth" in f.message for f in findings)
        assert any(f.data.get("unit") == "fpdiv" for f in findings
                   if "utilization" in f.data)


class TestOracleCells:
    def test_raises_with_actionable_message(self):
        cell = stream_cell("fadd", ILP.MIN, 1)
        with pytest.raises(ModelViolation, match="repro model"):
            oracle_cells([cell], [_result(cell, 0.5)])

    def test_silent_on_contained_results(self):
        cell = stream_cell("fadd", ILP.MIN, 1)
        oracle_cells([cell], [_result(cell, 4.0)])


class TestEngineHook:
    """The sweep engine runs the oracle after every sweep."""

    def test_live_sweep_passes_the_oracle(self):
        engine = SweepEngine(jobs=1)
        cells = [stream_cell("iadd", ILP.MAX, t, horizon_ticks=20_000)
                 for t in (1, 2)]
        results = engine.run(cells)
        assert len(results) == 2

    def test_oracle_off_skips_validation(self, monkeypatch):
        def boom(cells, results):
            raise AssertionError("oracle ran despite oracle=False")

        monkeypatch.setattr("repro.model.oracle.oracle_cells", boom)
        engine = SweepEngine(jobs=1, oracle=False)
        engine.run([stream_cell("iadd", ILP.MAX, 1, horizon_ticks=20_000)])

    def test_mistimed_optiming_fixture_is_caught(self, monkeypatch):
        """A simulator that ignores the cell's declared OpTiming is a
        regression the oracle must catch: the cell claims FADD takes
        80 ticks, the (sabotaged) execution uses the default 8."""
        cfg = CoreConfig()
        slowed = dict(cfg.timings)
        slowed[Op.FADD] = OpTiming(80, 40)
        slow_cfg = dataclasses.replace(cfg, timings=slowed)

        def ignore_declared_config(cell):
            stripped = SweepCell(kind=cell.kind, config=cell.config)
            runner = runner_for(cell.kind)
            return json.dumps(runner.encode(runner.run(stripped)))

        monkeypatch.setattr(engine_mod, "_execute_cell",
                            ignore_declared_config)
        engine = SweepEngine(jobs=1, preflight=False)
        cell = stream_cell("fadd", ILP.MIN, 1, horizon_ticks=40_000,
                           core_config=slow_cfg)
        with pytest.raises(ModelViolation, match="below lower"):
            engine.run([cell])


class TestMargins:
    def test_cpi_margin_record(self):
        bound = stream_bounds("fadd", ilp=ILP.MIN)
        m = cpi_margin(bound, 4.0)
        assert m["contained"] is True
        assert m["measured_cpi"] == pytest.approx(4.0)
        assert m["margin_lower"] == pytest.approx(4.0 - bound.lower, abs=1e-6)
        assert m["margin_upper"] == pytest.approx(bound.upper - 4.0, abs=1e-6)
        assert m["binding"] == bound.binding
