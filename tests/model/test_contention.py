"""Pair slowdown envelopes and the exclusive-demand table."""

import pytest

from repro.isa.streams import ILP
from repro.model import exclusive_demand, pair_bounds


class TestExclusiveDemand:
    def test_fdiv_demands_the_divider(self):
        demand = exclusive_demand("fdiv", ILP.MAX)
        assert demand["fpdiv"] == pytest.approx(76.0)

    def test_fadd_demands_fpexec(self):
        demand = exclusive_demand("fadd", ILP.MAX)
        assert demand["fpexec"] == pytest.approx(2.0)

    def test_dual_route_ops_have_no_provable_demand(self):
        # IADD can fall back between ALU1 and ALU0, so no single unit
        # is provably occupied.
        assert exclusive_demand("iadd", ILP.MAX) == {}

    def test_blended_stream_scales_by_share(self):
        demand = exclusive_demand("fadd-mul", ILP.MAX)
        # Half FADD (interval 2) + half FMUL (interval 4) on fpexec.
        assert demand["fpexec"] == pytest.approx(3.0)


class TestPairBounds:
    def test_fdiv_pair_names_the_divider(self):
        pb = pair_bounds("fdiv", "fdiv", ilp=ILP.MAX)
        assert pb.shared_units == ("fpdiv",)
        assert "non-pipelined divider" in pb.binding

    def test_unshared_pair_binding(self):
        pb = pair_bounds("iadd", "fadd", ilp=ILP.MAX)
        assert pb.shared_units == ()
        assert "no mandatory shared unit" in pb.binding

    def test_envelopes_are_ordered_and_positive(self):
        for a, b in (("fadd", "fmul"), ("fdiv", "fdiv"),
                     ("iadd", "istore"), ("iload", "iload")):
            pb = pair_bounds(a, b, ilp=ILP.MED)
            for lo, hi in (pb.slowdown_a(), pb.slowdown_b()):
                assert 0.0 <= lo <= hi

    def test_measured_fig2_anchor_is_contained(self):
        # Production-horizon measurement: fdiv x fdiv at min ILP runs
        # both sides at ~90.18 cycles (solo 37.99) — slowdown ~2.37.
        pb = pair_bounds("fdiv", "fdiv", ilp=ILP.MIN)
        assert pb.dual_a.contains(90.176)
        lo, hi = pb.slowdown_a()
        assert lo <= 2.374 <= hi

    def test_symmetric_pair_is_symmetric(self):
        pb = pair_bounds("fmul", "fmul", ilp=ILP.MAX)
        assert pb.slowdown_a() == pb.slowdown_b()
        assert pb.dual_a.lower == pb.dual_b.lower

    def test_to_dict_carries_both_sides(self):
        d = pair_bounds("fadd", "fmul", ilp=ILP.MAX).to_dict()
        assert d["stream_a"] == "fadd" and d["stream_b"] == "fmul"
        assert d["a"]["threads"] == 2 and d["b"]["threads"] == 2
        assert d["shared_units"] == ["fpexec"]
        assert len(d["slowdown_a"]) == 2
