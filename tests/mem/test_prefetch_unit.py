"""Unit tests for the multi-stream hardware prefetcher."""

from repro.mem.prefetch import AdjacentLinePrefetcher


class TestStreamDetection:
    def test_first_miss_prefetches_nothing(self):
        pf = AdjacentLinePrefetcher(degree=2)
        assert list(pf.on_l2_miss(100, 0)) == []

    def test_second_adjacent_miss_confirms(self):
        pf = AdjacentLinePrefetcher(degree=2)
        pf.on_l2_miss(100, 0)
        assert list(pf.on_l2_miss(101, 0)) == [102, 103]

    def test_plus_two_stride_also_confirms(self):
        pf = AdjacentLinePrefetcher(degree=1)
        pf.on_l2_miss(100, 0)
        assert list(pf.on_l2_miss(102, 0)) == [103]

    def test_descending_never_confirms(self):
        pf = AdjacentLinePrefetcher(degree=2)
        pf.on_l2_miss(100, 0)
        assert list(pf.on_l2_miss(99, 0)) == []

    def test_multiple_interleaved_streams(self):
        """MM interleaves A/B/C streams: each must be tracked."""
        pf = AdjacentLinePrefetcher(degree=1, streams_per_cpu=8)
        for base in (1000, 2000, 3000):
            pf.on_l2_miss(base, 0)
        for base in (1000, 2000, 3000):
            assert list(pf.on_l2_miss(base + 1, 0)) == [base + 2]

    def test_stream_table_lru_eviction(self):
        pf = AdjacentLinePrefetcher(degree=1, streams_per_cpu=2)
        pf.on_l2_miss(1000, 0)
        pf.on_l2_miss(2000, 0)
        pf.on_l2_miss(3000, 0)  # evicts the 1000-stream
        assert list(pf.on_l2_miss(1001, 0)) == []
        assert list(pf.on_l2_miss(3001, 0)) == [3002]

    def test_per_cpu_isolation(self):
        pf = AdjacentLinePrefetcher(degree=1, num_cpus=2)
        pf.on_l2_miss(100, 0)
        assert list(pf.on_l2_miss(101, 1)) == []  # cpu1 has no stream

    def test_trigger_on_use_continuation(self):
        pf = AdjacentLinePrefetcher(degree=2)
        pf.on_l2_miss(100, 0)
        pf.on_l2_miss(101, 0)          # stream head at 101
        nxt = list(pf.on_prefetch_hit(102, 0))
        assert nxt == [103, 104]

    def test_reset(self):
        pf = AdjacentLinePrefetcher(degree=1)
        pf.on_l2_miss(100, 0)
        pf.reset()
        assert list(pf.on_l2_miss(101, 0)) == []
