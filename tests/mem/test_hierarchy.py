"""Tests for the two-level hierarchy: latencies, counters, bus, prefetch."""

import pytest

from repro.mem import MemConfig, MemoryHierarchy
from repro.perfmon import Event


@pytest.fixture
def hier():
    return MemoryHierarchy(MemConfig(prefetch_enabled=False))


class TestLatencies:
    def test_cold_load_costs_memory(self, hier):
        r = hier.load(0x1000, cpu=0, now=0)
        assert r.level == 3
        assert r.latency >= hier.config.mem_latency

    def test_second_load_hits_l1(self, hier):
        hier.load(0x1000, 0, 0)
        r = hier.load(0x1000, 0, 100)
        assert r.level == 1
        assert r.latency == hier.config.l1_latency

    def test_same_line_hits(self, hier):
        hier.load(0x1000, 0, 0)
        assert hier.load(0x1000 + 31, 0, 10).level == 1

    def test_l2_hit_after_l1_eviction(self, hier):
        cfg = hier.config
        hier.load(0x0, 0, 0)
        # Walk enough distinct lines to evict line 0 from tiny L1
        # but keep it in L2.
        n_l1_lines = cfg.l1_size // cfg.line_size
        for k in range(1, n_l1_lines * 3):
            hier.load(k * cfg.line_size, 0, k * 1000)
        r = hier.load(0x0, 0, 10**6)
        assert r.level == 2
        assert r.latency == cfg.l2_latency


class TestCounters:
    def test_l2_read_miss_qualified_by_cpu(self, hier):
        hier.load(0x1000, 0, 0)
        hier.load(0x8000, 1, 0)
        hier.load(0x9000, 1, 0)
        mon = hier.monitor
        assert mon.read(Event.L2_READ_MISS, 0) == 1
        assert mon.read(Event.L2_READ_MISS, 1) == 2
        assert mon.read(Event.L2_READ_MISS) == 3

    def test_hits_do_not_count_misses(self, hier):
        hier.load(0x1000, 0, 0)
        hier.load(0x1000, 0, 1)
        assert hier.monitor.read(Event.L2_READ_MISS) == 1
        assert hier.monitor.read(Event.L1D_READ_ACCESS) == 2

    def test_store_counts_write_events(self, hier):
        hier.store(0x2000, 0, 0)
        mon = hier.monitor
        assert mon.read(Event.L2_WRITE_MISS, 0) == 1
        assert mon.read(Event.L2_READ_MISS) == 0

    def test_writeback_counted_on_dirty_l2_eviction(self):
        cfg = MemConfig(prefetch_enabled=False)
        hier = MemoryHierarchy(cfg)
        hier.store(0x0, 0, 0)
        n_l2_lines = cfg.l2_size // cfg.line_size
        for k in range(1, n_l2_lines * 2):
            hier.load(0x100000 + k * cfg.line_size, 0, k)
        assert hier.monitor.read(Event.L2_WRITEBACK) >= 1


class TestBusContention:
    def test_back_to_back_misses_queue_on_bus(self, hier):
        cfg = hier.config
        r1 = hier.load(0x10000, 0, now=0)
        r2 = hier.load(0x20000, 1, now=0)
        assert r1.latency == cfg.mem_latency
        # The second miss queues on both the single L2 port and the bus.
        assert r2.latency == (cfg.mem_latency + cfg.bus_occupancy
                              + cfg.l2_port_interval)

    def test_bus_frees_over_time(self, hier):
        hier.load(0x10000, 0, now=0)
        r = hier.load(0x20000, 1, now=10_000)
        assert r.latency == hier.config.mem_latency

    def test_l2_port_serializes_hits(self, hier):
        line = 0x3000
        hier.load(line, 0, 0)          # bring the line in
        hier.l1.invalidate(line // 32)
        base = hier.load(line, 0, 10_000).latency
        hier.l1.invalidate(line // 32)
        # Two immediate back-to-back L2 hits: the second pays the port.
        hier._l2_free = 20_000 + hier.config.l2_port_interval
        delayed = hier.load(line, 1, 20_000).latency
        assert delayed == base + hier.config.l2_port_interval


class TestPrefetcher:
    def test_ascending_misses_trigger_prefetch(self):
        hier = MemoryHierarchy(MemConfig(prefetch_enabled=True))
        line = hier.config.line_size
        hier.load(0 * line, 0, 0)
        hier.load(1 * line, 0, 1000)  # adjacent miss -> prefetch line 2
        assert hier.monitor.read(Event.L2_PREFETCH_FILL, 0) >= 1
        r = hier.load(2 * line, 0, 2000)
        assert r.level == 2  # demand access finds the prefetched line

    def test_random_misses_do_not_trigger(self):
        hier = MemoryHierarchy(MemConfig(prefetch_enabled=True))
        line = hier.config.line_size
        for k in (0, 50, 7, 93, 21):
            hier.load(k * line, 0, k)
        assert hier.monitor.read(Event.L2_PREFETCH_FILL) == 0

    def test_streams_tracked_per_cpu(self):
        hier = MemoryHierarchy(MemConfig(prefetch_enabled=True))
        line = hier.config.line_size
        # cpu0 ascends through even lines, cpu1 through far-away lines;
        # interleaving must not break cpu0's stream detection.
        hier.load(0 * line, 0, 0)
        hier.load(1000 * line, 1, 1)
        hier.load(1 * line, 0, 2)
        assert hier.monitor.read(Event.L2_PREFETCH_FILL, 0) >= 1


class TestInclusion:
    def test_l2_eviction_invalidates_l1(self):
        cfg = MemConfig(prefetch_enabled=False)
        hier = MemoryHierarchy(cfg)
        hier.load(0x0, 0, 0)
        n_l2_lines = cfg.l2_size // cfg.line_size
        for k in range(1, n_l2_lines * 2 + 1):
            hier.load(k * cfg.line_size, 0, k)
        # Inclusion invariant: everything in L1 is also in L2.
        l1_lines = hier.l1.resident_lines()
        l2_lines = hier.l2.resident_lines()
        assert l1_lines <= l2_lines

    def test_reset(self):
        hier = MemoryHierarchy()
        hier.load(0x40, 0, 0)
        hier.reset()
        assert hier.l1.occupancy == 0
        assert hier.l2.occupancy == 0
        assert hier._bus_free == 0


class TestSharedBetweenCpus:
    def test_cpu1_hits_line_fetched_by_cpu0(self, hier):
        """Both logical CPUs share the physical caches (HT)."""
        hier.load(0x3000, 0, 0)
        assert hier.load(0x3000, 1, 10).level == 1
