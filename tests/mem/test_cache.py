"""Unit + property tests for the set-associative LRU cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigError
from repro.mem import Cache


def make(size=1024, assoc=4, line=32):
    return Cache(size, assoc, line, "test")


class TestGeometry:
    def test_set_count(self):
        c = make(1024, 4, 32)  # 32 lines / 4 ways = 8 sets
        assert c.num_sets == 8

    def test_rejects_non_power_of_two_size(self):
        with pytest.raises(ConfigError):
            Cache(1000, 4, 32)

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ConfigError):
            Cache(1024, 4, 48)

    def test_rejects_bad_assoc(self):
        with pytest.raises(ConfigError):
            Cache(1024, 5, 32)

    def test_line_of(self):
        c = make(line=32)
        assert c.line_of(0) == 0
        assert c.line_of(31) == 0
        assert c.line_of(32) == 1


class TestLRU:
    def test_miss_then_hit(self):
        c = make()
        assert not c.lookup(7)
        c.fill(7)
        assert c.lookup(7)

    def test_eviction_order_is_lru(self):
        c = make(size=4 * 32, assoc=4, line=32)  # fully assoc, 4 ways
        for line in range(4):
            c.fill(line)
        c.lookup(0)  # refresh line 0
        victim = c.fill(99)
        assert victim == (1, False)  # line 1 is now the oldest
        assert c.contains(0)

    def test_fill_resident_line_is_refresh_not_evict(self):
        c = make(size=4 * 32, assoc=4, line=32)
        for line in range(4):
            c.fill(line)
        assert c.fill(0) is None
        victim = c.fill(50)
        assert victim == (1, False)

    def test_dirty_tracking(self):
        c = make(size=2 * 32, assoc=2, line=32)
        c.fill(1)
        c.lookup(1, write=True)
        c.fill(2)
        victim = c.fill(3)
        assert victim == (1, True)

    def test_fill_dirty_sticks(self):
        c = make(size=2 * 32, assoc=2, line=32)
        c.fill(5, dirty=True)
        c.fill(6)
        assert c.fill(7) == (5, True)

    def test_invalidate(self):
        c = make()
        c.fill(3)
        assert c.invalidate(3)
        assert not c.contains(3)
        assert not c.invalidate(3)

    def test_sets_are_independent(self):
        c = make(size=8 * 32, assoc=2, line=32)  # 4 sets
        # Lines 0, 4, 8, 12 map to set 0; lines 1, 5 to set 1.
        c.fill(0)
        c.fill(4)
        c.fill(1)
        victim = c.fill(8)  # evicts 0 from set 0
        assert victim == (0, False)
        assert c.contains(1)

    def test_flush(self):
        c = make()
        c.fill(1)
        c.fill(2)
        c.flush()
        assert c.occupancy == 0


@settings(max_examples=50)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["fill", "lookup", "invalidate"]),
                  st.integers(min_value=0, max_value=63)),
        max_size=200,
    )
)
def test_cache_invariants(ops):
    """Properties that must hold under any access sequence:

    * per-set occupancy never exceeds associativity;
    * a line reported evicted is no longer resident;
    * a line just filled is resident.
    """
    c = Cache(512, 2, 32)  # 16 lines, 2-way, 8 sets
    for kind, line in ops:
        if kind == "fill":
            victim = c.fill(line)
            assert c.contains(line)
            if victim is not None:
                assert not c.contains(victim[0])
        elif kind == "lookup":
            c.lookup(line)
        else:
            c.invalidate(line)
        for s in c._sets:
            assert len(s) <= c.assoc
    assert c.occupancy == len(c.resident_lines())
