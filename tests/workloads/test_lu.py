"""Tests for the LU workload."""

import pytest

from repro.pintool import DryRunAPI, instruction_mix
from repro.isa.opcodes import SubUnit
from repro.runtime import Program
from repro.workloads import lu
from repro.workloads.common import Variant

ALL_VARIANTS = [Variant.SERIAL, Variant.TLP_COARSE, Variant.TLP_PFETCH]


def run(variant, n=16, tile=8):
    build = lu.build(variant, n=n, tile=tile)
    prog = Program(aspace=build.aspace)
    for f in build.factories:
        prog.add_thread(f)
    return build, prog.run()


class TestNumerics:
    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_lu_reconstructs_original(self, variant):
        build, _ = run(variant)
        assert build.reference_check()

    def test_factorization_correct_standalone(self):
        from repro.common import AddressSpace
        from repro.workloads.lu import _LUState

        state = _LUState(AddressSpace(), n=16, tile=8)
        tiles = 2
        for k in range(tiles):
            state.factor_diag(k)
            for j in range(k + 1, tiles):
                state.update_row_panel(k, j)
            for i in range(k + 1, tiles):
                state.update_col_panel(k, i)
            for i in range(k + 1, tiles):
                for j in range(k + 1, tiles):
                    state.update_trailing(k, i, j)
        assert state.check()

    def test_unsupported_variant_rejected(self):
        from repro.common import ConfigError

        with pytest.raises(ConfigError):
            lu.build(Variant.TLP_FINE)


class TestVariants:
    def test_coarse_splits_work(self):
        _, serial = run(Variant.SERIAL)
        _, coarse = run(Variant.TLP_COARSE)
        # Both threads execute nontrivial shares (phases partitioned).
        assert min(coarse.retired) > 0.2 * sum(serial.retired) / 2

    def test_prefetcher_executes_worker_scale_uops(self):
        """The paper's LU oddity: the prefetcher's instruction count
        rivals the worker's (3.26e9 vs 3.21e9)."""
        _, pf = run(Variant.TLP_PFETCH, n=32)
        worker, helper = pf.retired
        assert helper > 0.35 * worker

    def test_spr_total_uops_far_exceed_serial(self):
        """fig 4d: the dual-threaded prefetch method needs more than
        double the µops of serial."""
        _, serial = run(Variant.SERIAL, n=32)
        _, pf = run(Variant.TLP_PFETCH, n=32)
        assert sum(pf.retired) > 1.35 * sum(serial.retired)


class TestInstructionMix:
    def test_serial_mix_shape(self):
        """Table 1 LU: ALU- and LOAD-heavy, FP_ADD = FP_MUL = 11.15%."""
        build = lu.build(Variant.SERIAL, n=16)
        mix = instruction_mix(build.factories[0](DryRunAPI(0)))
        assert mix.percent(SubUnit.LOAD) > mix.percent(SubUnit.ALUS) > 20
        assert mix.percent(SubUnit.FP_ADD) == pytest.approx(
            mix.percent(SubUnit.FP_MUL), abs=1.5
        )
        assert mix.percent(SubUnit.STORE) == pytest.approx(11.2, abs=3)

    def test_lu_alu_share_higher_than_mm(self):
        """§5.3: 'With respect to MM, LU exhibits higher ALUs usage.'"""
        from repro.workloads import matmul

        lmix = instruction_mix(
            lu.build(Variant.SERIAL, n=16).factories[0](DryRunAPI(0))
        )
        mmix = instruction_mix(
            matmul.build(Variant.SERIAL, n=16).factories[0](DryRunAPI(0))
        )
        assert lmix.percent(SubUnit.ALUS) > mmix.percent(SubUnit.ALUS)
