"""Tests for the MM workload: numerics, variants, instruction mixes."""

import pytest

from repro.perfmon import Event
from repro.pintool import DryRunAPI, instruction_mix
from repro.isa.opcodes import SubUnit
from repro.runtime import Program
from repro.workloads import matmul
from repro.workloads.common import Variant

ALL_VARIANTS = [Variant.SERIAL, Variant.TLP_FINE, Variant.TLP_COARSE,
                Variant.TLP_PFETCH, Variant.TLP_PFETCH_WORK]


def run(variant, n=16, tile=8):
    build = matmul.build(variant, n=n, tile=tile)
    prog = Program(aspace=build.aspace)
    for f in build.factories:
        prog.add_thread(f)
    return build, prog.run()


class TestNumerics:
    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_c_equals_a_times_b(self, variant):
        build, _ = run(variant)
        assert build.reference_check()

    def test_thread_counts(self):
        assert matmul.build(Variant.SERIAL, n=16).num_threads == 1
        for v in ALL_VARIANTS[1:]:
            assert matmul.build(v, n=16).num_threads == 2


class TestWorkPartitioning:
    def test_tlp_halves_the_work(self):
        _, serial = run(Variant.SERIAL)
        _, coarse = run(Variant.TLP_COARSE)
        total = sum(serial.retired)
        per_thread = coarse.retired
        assert sum(per_thread) == pytest.approx(total, rel=0.02)
        assert per_thread[0] == pytest.approx(per_thread[1], rel=0.1)

    def test_fine_emits_more_uops_than_coarse(self):
        """The fine variant pays extra strided-index masking."""
        _, fine = run(Variant.TLP_FINE)
        _, coarse = run(Variant.TLP_COARSE)
        assert sum(fine.retired) > sum(coarse.retired)

    def test_prefetcher_is_lightweight(self):
        """MM's SPR thread executes a small fraction of the worker's
        µops (paper Table 1: 0.20e9 vs 2.27e9)."""
        _, pf = run(Variant.TLP_PFETCH)
        worker, helper = pf.retired
        assert helper < 0.35 * worker


class TestSPR:
    def test_prefetch_reduces_worker_misses(self):
        _, serial = run(Variant.SERIAL, n=32)
        _, pf = run(Variant.TLP_PFETCH, n=32)
        serial_misses = serial.monitor.read(Event.L2_READ_MISS)
        worker_misses = pf.monitor.read(Event.L2_READ_MISS, 0)
        assert worker_misses < serial_misses

    def test_prefetch_arrays_narrowing(self):
        build = matmul.build(Variant.TLP_PFETCH, n=16,
                             prefetch_arrays=("mm.A",))
        prog = Program(aspace=build.aspace)
        for f in build.factories:
            prog.add_thread(f)
        result = prog.run()
        assert build.reference_check()
        # Narrower prefetch set -> fewer helper instructions.
        full = matmul.build(Variant.TLP_PFETCH, n=16)
        prog2 = Program(aspace=full.aspace)
        for f in full.factories:
            prog2.add_thread(f)
        result2 = prog2.run()
        assert result.retired[1] < result2.retired[1]


class TestInstructionMix:
    def test_serial_mix_matches_table1(self):
        """Paper Table 1, MM serial column: ALUs 27.06, FP_ADD 11.70,
        FP_MUL 11.70, LOAD 38.76, STORE 12.07 (%)."""
        build = matmul.build(Variant.SERIAL, n=16)
        mix = instruction_mix(build.factories[0](DryRunAPI(0)))
        assert mix.percent(SubUnit.ALUS) == pytest.approx(27.1, abs=4)
        assert mix.percent(SubUnit.FP_ADD) == pytest.approx(11.7, abs=2)
        assert mix.percent(SubUnit.FP_MUL) == pytest.approx(11.7, abs=2)
        assert mix.percent(SubUnit.LOAD) == pytest.approx(38.8, abs=4)
        assert mix.percent(SubUnit.STORE) == pytest.approx(12.1, abs=2)

    def test_logical_ops_dominate_the_alu_share(self):
        """§5.3: 'at about 25% of total instructions' are logicals from
        the blocked-array-layout binary masks."""
        from repro.isa import Op

        build = matmul.build(Variant.SERIAL, n=16)
        instrs = list(build.factories[0](DryRunAPI(0)))
        logicals = sum(1 for i in instrs if i.op is Op.ILOGIC)
        assert logicals / len(instrs) > 0.10
