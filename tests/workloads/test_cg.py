"""Tests for the CG workload."""

import numpy as np
import pytest

from repro.pintool import DryRunAPI, instruction_mix
from repro.isa.opcodes import SubUnit
from repro.runtime import Program
from repro.workloads import cg
from repro.workloads.common import Variant

ALL_VARIANTS = [Variant.SERIAL, Variant.TLP_COARSE, Variant.TLP_PFETCH,
                Variant.TLP_PFETCH_WORK]

SMALL = dict(n=128, nnz_per_row=12, iterations=2)


def run(variant, **kw):
    params = {**SMALL, **kw}
    build = cg.build(variant, **params)
    prog = Program(aspace=build.aspace)
    for f in build.factories:
        prog.add_thread(f)
    return build, prog.run()


class TestNumerics:
    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_cg_recurrence_matches_scipy(self, variant):
        build, _ = run(variant)
        assert build.reference_check()

    def test_matrix_has_diagonal(self):
        from repro.common import AddressSpace
        from repro.workloads.cg import _CGState

        state = _CGState(AddressSpace(), 64, 8)
        for i in range(64):
            lo, hi = state.rowptr[i], state.rowptr[i + 1]
            assert i in set(state.colidx[lo:hi])

    def test_csr_structure_valid(self):
        from repro.common import AddressSpace
        from repro.workloads.cg import _CGState

        state = _CGState(AddressSpace(), 64, 8)
        assert state.rowptr[0] == 0
        assert state.rowptr[-1] == state.nnz
        assert (np.diff(state.rowptr) > 0).all()
        assert (state.colidx >= 0).all() and (state.colidx < 64).all()


class TestVariants:
    def test_parallel_overhead(self):
        """§5.3: each TLP thread executes *more* than half the serial
        instructions due to parallelization overhead."""
        _, serial = run(Variant.SERIAL)
        _, coarse = run(Variant.TLP_COARSE)
        assert sum(coarse.retired) > sum(serial.retired)

    def test_prefetcher_smaller_than_worker(self):
        _, pf = run(Variant.TLP_PFETCH)
        worker, helper = pf.retired
        assert helper < worker

    def test_pfetch_reduces_worker_misses(self):
        from repro.perfmon import Event

        _, serial = run(Variant.SERIAL)
        _, pf = run(Variant.TLP_PFETCH)
        assert (pf.monitor.read(Event.L2_READ_MISS, 0)
                < serial.monitor.read(Event.L2_READ_MISS))


class TestInstructionMix:
    def test_serial_mix_shape(self):
        """Table 1 CG: ALUs+LOAD dominate, FP_ADD = FP_MUL (~9%), and a
        visible FP_MOVE share — unlike MM/LU."""
        build = cg.build(Variant.SERIAL, **SMALL)
        mix = instruction_mix(build.factories[0](DryRunAPI(0)))
        assert mix.percent(SubUnit.LOAD) > 25
        assert mix.percent(SubUnit.ALUS) > 15
        assert mix.percent(SubUnit.FP_ADD) == pytest.approx(
            mix.percent(SubUnit.FP_MUL), abs=2
        )
        assert mix.percent(SubUnit.FP_MOVE) > 5

    def test_spr_column_is_alu_dominated(self):
        """Table 1 CG spr: ALUs ~50%, LOAD ~19% — the slice is mostly
        address computation."""
        from repro.core.table1 import _interleaved_mix

        build = cg.build(Variant.TLP_PFETCH, **SMALL)
        mix = _interleaved_mix(build.factories, observe_tid=1)
        assert mix.percent(SubUnit.ALUS) > mix.percent(SubUnit.LOAD)
