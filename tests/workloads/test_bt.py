"""Tests for the BT workload."""

import numpy as np
import pytest

from repro.pintool import DryRunAPI, instruction_mix
from repro.isa.opcodes import SubUnit
from repro.runtime import Program
from repro.workloads import bt
from repro.workloads.common import Variant

ALL_VARIANTS = [Variant.SERIAL, Variant.TLP_COARSE, Variant.TLP_PFETCH]


def run(variant, grid=4):
    build = bt.build(variant, grid=grid)
    prog = Program(aspace=build.aspace)
    for f in build.factories:
        prog.add_thread(f)
    return build, prog.run()


class TestNumerics:
    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_all_lines_solved_with_small_residual(self, variant):
        build, _ = run(variant)
        assert build.reference_check()

    def test_thomas_matches_dense_solve(self):
        from repro.common import AddressSpace
        from repro.workloads.bt import _BTState, BLOCK

        s = _BTState(AddressSpace(), 4)
        s.solve_line(1, 3)
        n = 4
        cells = [s.cell_index(1, 3, k) for k in range(n)]
        A = np.zeros((n * BLOCK, n * BLOCK))
        for k in range(n):
            r0 = k * BLOCK
            A[r0:r0 + BLOCK, r0:r0 + BLOCK] = s.diag[cells[k]]
            if k > 0:
                A[r0:r0 + BLOCK, r0 - BLOCK:r0] = s.lower[cells[k]]
            if k < n - 1:
                A[r0:r0 + BLOCK, r0 + BLOCK:r0 + 2 * BLOCK] = s.upper[cells[k]]
        rhs = np.concatenate([s.rhs[c] for c in cells])
        dense = np.linalg.solve(A, rhs)
        mine = np.concatenate([s.solution[c] for c in cells])
        assert np.allclose(dense, mine)

    def test_direction_strides(self):
        """x lines are contiguous; y strides by n, z by n^2."""
        from repro.common import AddressSpace
        from repro.workloads.bt import _BTState

        s = _BTState(AddressSpace(), 4)
        xs = [s.cell_index(0, 0, k) for k in range(4)]
        ys = [s.cell_index(1, 0, k) for k in range(4)]
        zs = [s.cell_index(2, 0, k) for k in range(4)]
        assert np.diff(xs).tolist() == [1, 1, 1]
        assert np.diff(ys).tolist() == [4, 4, 4]
        assert np.diff(zs).tolist() == [16, 16, 16]

    def test_every_cell_covered_each_direction(self):
        from repro.common import AddressSpace
        from repro.workloads.bt import _BTState

        s = _BTState(AddressSpace(), 4)
        for d in range(3):
            cells = {
                s.cell_index(d, line, k)
                for line in range(16)
                for k in range(4)
            }
            assert cells == set(range(64))


class TestVariants:
    def test_coarse_splits_lines_evenly(self):
        _, coarse = run(Variant.TLP_COARSE)
        a, b = coarse.retired
        assert a == pytest.approx(b, rel=0.1)

    def test_prefetcher_store_heavy(self):
        """Table 1 BT spr column: STORE ~43% — the slice touches its
        write destinations."""
        from repro.core.table1 import _interleaved_mix

        build = bt.build(Variant.TLP_PFETCH, grid=4)
        mix = _interleaved_mix(build.factories, observe_tid=1)
        assert mix.percent(SubUnit.STORE) > 8

    def test_unsupported_variant_rejected(self):
        from repro.common import ConfigError

        with pytest.raises(ConfigError):
            bt.build(Variant.TLP_FINE)


class TestInstructionMix:
    def test_serial_mix_shape(self):
        """Table 1 BT: low ALUs (~8%), FP-rich (FP_MUL > FP_ADD), high
        LOAD, visible FP_MOVE — the 'assorted compute instructions'."""
        build = bt.build(Variant.SERIAL, grid=4)
        mix = instruction_mix(build.factories[0](DryRunAPI(0)))
        assert mix.percent(SubUnit.ALUS) < 15
        assert mix.percent(SubUnit.FP_MUL) > mix.percent(SubUnit.FP_ADD)
        assert mix.percent(SubUnit.LOAD) > 30
        assert mix.percent(SubUnit.FP_MOVE) > 4

    def test_bt_alu_share_lowest_of_all_apps(self):
        """Table 1: BT has by far the lowest ALU share (8 vs 27-39%)."""
        from repro.workloads import matmul, lu

        bmix = instruction_mix(
            bt.build(Variant.SERIAL, grid=4).factories[0](DryRunAPI(0))
        )
        mmix = instruction_mix(
            matmul.build(Variant.SERIAL, n=16).factories[0](DryRunAPI(0))
        )
        lmix = instruction_mix(
            lu.build(Variant.SERIAL, n=16).factories[0](DryRunAPI(0))
        )
        assert bmix.percent(SubUnit.ALUS) < mmix.percent(SubUnit.ALUS)
        assert bmix.percent(SubUnit.ALUS) < lmix.percent(SubUnit.ALUS)
