"""Tests for shared workload infrastructure (blocked layouts etc.)."""

import numpy as np
import pytest

from repro.common import AddressSpace, ConfigError
from repro.isa import Op
from repro.isa.opcodes import SubUnit, OP_SUBUNIT
from repro.workloads.common import (
    BlockedMatrix,
    emit_blocked_index,
    prefetch_lines,
    prefetch_elements,
)


class TestBlockedMatrix:
    @pytest.fixture
    def mat(self):
        return BlockedMatrix(AddressSpace(), "A", n=16, tile=4)

    def test_offsets_are_a_permutation(self, mat):
        offsets = {mat.offset(i, j) for i in range(16) for j in range(16)}
        assert offsets == set(range(256))

    def test_tile_is_contiguous(self, mat):
        """All elements of one tile occupy consecutive offsets — the
        property that makes tiles single-stream prefetchable."""
        offs = sorted(
            mat.offset(i, j) for i in range(4) for j in range(4)
        )
        assert offs == list(range(offs[0], offs[0] + 16))

    def test_tile_base_addr(self, mat):
        assert mat.tile_base_addr(0, 0) == mat.addr(0, 0)
        assert mat.tile_base_addr(1, 2) == mat.addr(4, 8)

    def test_tile_view_matches_layout(self, mat):
        mat.data[:] = np.arange(256).reshape(16, 16)
        view = mat.tile_view(2, 3)
        assert view[0, 0] == mat.data[8, 12]
        view[0, 0] = -1  # views alias the underlying data
        assert mat.data[8, 12] == -1

    def test_tile_bytes(self, mat):
        assert mat.tile_bytes() == 4 * 4 * 8

    def test_power_of_two_required(self):
        with pytest.raises(ConfigError):
            BlockedMatrix(AddressSpace(), "A", n=24, tile=4)
        with pytest.raises(ConfigError):
            BlockedMatrix(AddressSpace(), "A", n=16, tile=3)
        with pytest.raises(ConfigError):
            BlockedMatrix(AddressSpace(), "A", n=8, tile=16)


class TestEmitters:
    def test_blocked_index_is_a_logical_chain(self):
        instrs = list(emit_blocked_index(dst=5, site=1, extra_logic=2))
        assert [i.op for i in instrs] == [Op.ILOGIC] * 3
        # Chain: each op after the first depends on the previous result.
        for i in instrs[1:]:
            assert 5 in i.srcs

    def test_prefetch_lines_one_load_per_line(self):
        instrs = list(prefetch_lines(0x1000, 256, 32, site=9))
        loads = [i for i in instrs if i.op is Op.FLOAD]
        assert len(loads) == 8
        assert [ld.addr for ld in loads] == [0x1000 + k * 32 for k in range(8)]

    def test_prefetch_elements_heavier_than_lines(self):
        lines = list(prefetch_lines(0x1000, 256, 32, site=9))
        elems = list(prefetch_elements(0x1000, 256, 8, site=9))
        assert len(elems) > 3 * len(lines)
        # The element slice is ALU-heavy and includes write touches.
        units = [OP_SUBUNIT[i.op] for i in elems]
        assert units.count(SubUnit.ALUS) > units.count(SubUnit.LOAD) / 2
        assert SubUnit.STORE in units
