"""Tests for the SW_PREFETCH extension (the paper's §6 recommendation)
and the PREFETCH instruction it rides on."""

import pytest

from repro.isa import Instr, Op, F
from repro.mem import MemConfig, MemoryHierarchy
from repro.perfmon import Event, PerfMonitor
from repro.runtime import Program
from repro.workloads import matmul
from repro.workloads.common import Variant, emit_sw_prefetch


class TestPrefetchInstruction:
    def test_requires_address(self):
        with pytest.raises(ValueError):
            Instr(Op.PREFETCH)

    def test_counts_no_demand_miss(self):
        mon = PerfMonitor(2)
        hier = MemoryHierarchy(MemConfig(), mon, 2)
        hier.swprefetch(0x40000, 0, 0)
        assert mon.read(Event.L2_READ_MISS) == 0
        assert mon.read(Event.L2_PREFETCH_FILL, 0) == 1

    def test_fill_becomes_hit_after_latency(self):
        cfg = MemConfig()
        mon = PerfMonitor(2)
        hier = MemoryHierarchy(cfg, mon, 2)
        hier.swprefetch(0x40000, 0, now=0)
        late = hier.load(0x40000, 0, now=10_000)
        assert late.level == 2  # L2 hit, no demand memory transaction
        assert mon.read(Event.L2_READ_MISS) == 0

    def test_early_demand_pays_residual(self):
        cfg = MemConfig()
        hier = MemoryHierarchy(cfg, PerfMonitor(2), 2)
        hier.swprefetch(0x40000, 0, now=0)
        soon = hier.load(0x40000, 0, now=10)
        assert soon.latency > cfg.l2_latency  # late-prefetch residual

    def test_resident_line_is_a_noop(self):
        mon = PerfMonitor(2)
        hier = MemoryHierarchy(MemConfig(), mon, 2)
        hier.load(0x40000, 0, 0)
        hier.swprefetch(0x40000, 0, 100)
        assert mon.read(Event.L2_PREFETCH_FILL) == 0

    def test_core_executes_prefetch_uops(self):
        prog = Program()

        def th(api):
            yield Instr(Op.PREFETCH, addr=0x40000)
            yield Instr.load(0x40000, dst=F(0))

        prog.add_thread(th)
        result = prog.run()
        assert result.monitor.read(Event.SW_PREFETCH_ISSUED, 0) == 1
        assert result.monitor.read(Event.L2_READ_MISS) == 0

    def test_emitter_one_uop_per_line(self):
        instrs = list(emit_sw_prefetch(0x1000, 256, 32, site=1))
        assert len(instrs) == 8
        assert all(i.op is Op.PREFETCH for i in instrs)


class TestSWPrefetchVariant:
    def run(self, variant, n=16):
        build = matmul.build(variant, n=n)
        prog = Program(aspace=build.aspace)
        for f in build.factories:
            prog.add_thread(f)
        return build, prog.run()

    def test_numerics(self):
        build, _ = self.run(Variant.SW_PREFETCH)
        assert build.reference_check()

    def test_single_thread(self):
        build = matmul.build(Variant.SW_PREFETCH, n=16)
        assert build.num_threads == 1

    def test_low_uop_overhead(self):
        """§6: 'low number of µops' — within a few percent of serial."""
        _, serial = self.run(Variant.SERIAL)
        _, sw = self.run(Variant.SW_PREFETCH)
        assert sum(sw.retired) < 1.06 * sum(serial.retired)

    def test_beats_or_matches_serial_at_scale(self):
        _, serial = self.run(Variant.SERIAL, n=32)
        _, sw = self.run(Variant.SW_PREFETCH, n=32)
        assert sw.ticks <= serial.ticks * 1.01
        assert (sw.monitor.read(Event.L2_READ_MISS)
                <= serial.monitor.read(Event.L2_READ_MISS))
