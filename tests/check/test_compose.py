"""The pair-composition certification pass: joint lattice facts,
interference windows, guard-aware splices, machine checking, and the
joint static/dynamic agreement property.

The property test at the bottom is the pair analog of the recurrence
pass's soundness contract: for any fig.-2 pair, if the dual-thread
fast-forward proves a joint pair and jumps, each thread's position
delta is a whole multiple of that side's statically certified
``period_pos`` — or the detector declines to jump at all.
"""

import dataclasses
import math

from hypothesis import HealthCheck, given, seed, settings
from hypothesis import strategies as st

from repro.check.compose import (
    COMPOSE_SCHEMA_VERSION,
    PairCertificate,
    _stream_trace,
    compose_findings,
    compose_pair,
    fig2_pairs,
    pair_cert_fingerprint,
    pair_inventory,
)
from repro.check.findings import Severity
from repro.core.coexec import run_pair_cpis
from repro.cpu import fastpath as _fastpath
from repro.isa.streams import ILP


def _traces(name_a, name_b, ilp=ILP.MAX):
    return _stream_trace(name_a, ilp), _stream_trace(name_b, ilp)


class TestJointLattice:
    def test_joint_period_is_the_lcm(self):
        cert = compose_pair("fload", "iadd")
        assert cert.verdict == "joint-periodic"
        assert cert.joint_period_pos == math.lcm(cert.period_a,
                                                 cert.period_b)
        assert cert.rr_parity == 2

    def test_every_fig2_pair_is_joint_periodic(self):
        for a, b in fig2_pairs():
            cert = compose_pair(a, b)
            assert cert.verdict == "joint-periodic", (a, b)
            assert cert.joint_period_pos > 0

    def test_fig2_inventory_is_the_full_matrix(self):
        # 5x5 upper triangles of both same-type panels (15 each) plus
        # the 3x3 fp-x-int grid.
        assert len(fig2_pairs()) == 15 + 15 + 9

    def test_splices_cover_exactly_the_memory_sides(self):
        cert = compose_pair("fload", "iadd")
        assert [s.thread for s in cert.splices] == [0]
        both = compose_pair("fstore", "istore")
        assert [s.thread for s in both.splices] == [0, 1]
        assert all(s.reason == "wrap-guard" for s in both.splices)

    def test_splice_window_respects_the_guard(self):
        cert = compose_pair("fload", "fload")
        trace_a, _ = _traces("fload", "fload")
        want = max(0, trace_a.span - cert.guard_bytes) // trace_a.stride
        assert cert.splices[0].limit_pos == want
        assert want < trace_a.span // trace_a.stride

    def test_interference_rows_match_shared_units(self):
        cert = compose_pair("fdiv", "fdiv")
        assert "fpdiv" in cert.shared_units
        assert tuple(w.unit for w in cert.interference) \
            == cert.shared_units
        assert all(w.demand_a > 0 and w.demand_b > 0
                   for w in cert.interference)


class TestMachineCheck:
    def test_honest_certificates_validate_clean(self):
        for a, b in (("fload", "iload"), ("fadd", "imul"),
                     ("fdiv", "fdiv")):
            cert = compose_pair(a, b)
            assert cert.validate(*_traces(a, b)) == [], (a, b)

    def test_forged_joint_lattice_is_rejected(self):
        cert = compose_pair("fload", "iload")
        forged = dataclasses.replace(
            cert, joint_period_pos=2 * cert.joint_period_pos)
        assert any("joint_period_pos" in p
                   for p in forged.validate(*_traces("fload", "iload")))

    def test_forged_verdict_is_rejected(self):
        cert = compose_pair("fload", "iload")
        forged = dataclasses.replace(cert, verdict="none")
        assert any("verdict" in p
                   for p in forged.validate(*_traces("fload", "iload")))

    def test_wrong_pair_is_rejected(self):
        cert = compose_pair("fdiv", "fdiv")
        assert cert.validate(*_traces("fload", "iload"))

    def test_stale_schema_version_is_rejected(self):
        cert = dataclasses.replace(
            compose_pair("fload", "iload"),
            schema_version=COMPOSE_SCHEMA_VERSION + 1)
        assert any("schema_version" in p
                   for p in cert.validate(*_traces("fload", "iload")))

    def test_kind_mismatch_is_rejected(self):
        cert = dataclasses.replace(compose_pair("fload", "iload"),
                                   kind="stream")
        assert any("kind" in p
                   for p in cert.validate(*_traces("fload", "iload")))

    def test_forged_interference_is_rejected(self):
        cert = compose_pair("fdiv", "fdiv")
        forged = dataclasses.replace(cert, interference=())
        assert any("interference" in p
                   for p in forged.validate(*_traces("fdiv", "fdiv")))

    def test_forged_splices_are_rejected(self):
        cert = compose_pair("fload", "iload")
        forged = dataclasses.replace(cert, splices=())
        assert any("splices" in p
                   for p in forged.validate(*_traces("fload", "iload")))


class TestSerialization:
    def test_round_trip_preserves_everything(self):
        cert = compose_pair("fstore", "istore", subject="fig2c/0")
        back = PairCertificate.from_dict(cert.to_dict())
        assert back == cert

    def test_fingerprint_ignores_the_subject(self):
        cert = compose_pair("fload", "iload", subject="")
        relabeled = dataclasses.replace(cert, subject="fig2/cell-7")
        assert cert.fingerprint() == relabeled.fingerprint()

    def test_fingerprint_sees_structure(self):
        assert compose_pair("fload", "iload").fingerprint() \
            != compose_pair("fadd", "imul").fingerprint()

    def test_cached_fingerprint_matches_fresh_composition(self):
        fresh = compose_pair("fload", "iload").fingerprint()
        assert pair_cert_fingerprint("fload", "iload", "MAX") == fresh


class TestPassAndInventory:
    def test_findings_summarize_the_certificate(self):
        findings = compose_findings("fdiv", "fdiv")
        assert len(findings) == 1
        f = findings[0]
        assert f.check == "compose" and f.severity is Severity.INFO
        assert f.data["verdict"] == "joint-periodic"
        assert len(f.data["fingerprint"]) == 16

    def test_inventory_covers_the_matrix(self):
        inv = pair_inventory()
        assert inv["schema_version"] == COMPOSE_SCHEMA_VERSION
        assert len(inv["pairs"]) == len(fig2_pairs())
        assert all(e["verdict"] == "joint-periodic"
                   for e in inv["pairs"])
        assert all(len(e["fingerprint"]) == 16 for e in inv["pairs"])


# ---------------------------------------------------------------------------
# Joint static/dynamic agreement (the soundness property)
# ---------------------------------------------------------------------------

@seed(20260808)
@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(pair=st.sampled_from(sorted(fig2_pairs())))
def test_static_periods_divide_every_joint_jump(pair):
    """For any fig.-2 pair: if the dual-thread fast-forward proves a
    joint pair and jumps, each thread's position delta of the anchor
    pair is a whole multiple of that side's statically certified
    ``period_pos``; otherwise it declines — never a jump off the joint
    lattice."""
    name_a, name_b = pair
    cert = compose_pair(name_a, name_b)
    assert cert.verdict == "joint-periodic"

    _fastpath._last_jump = None
    _fastpath.reset_stats()
    run_pair_cpis(name_a, name_b, ILP.MAX, horizon_ticks=60_000,
                  fastpath=True)
    jump = _fastpath.last_jump()
    if jump is None:
        assert _fastpath.stats().jumps == 0
        return
    assert jump["k"] >= 1
    for dp, period in zip(jump["dps"], (cert.period_a, cert.period_b)):
        assert dp % period == 0, (
            f"joint jump delta {dp} is off the certified "
            f"period-{period} lattice for {name_a}+{name_b}")
