"""Tests for the happens-before race detector (pass 3)."""

from repro.check import detect_races
from repro.check.findings import Severity
from repro.common.addrspace import AddressSpace
from repro.isa import Instr, Op, R
from repro.isa.registers import F
from repro.runtime import SenseBarrier, SyncVar, advance_var, wait_ge


def errors(findings):
    return [f for f in findings if f.severity is Severity.ERROR]


def make_shared():
    aspace = AddressSpace()
    return aspace, aspace.alloc("shared", 128)


class TestUnsynchronized:
    def test_store_load_pair_detected(self):
        aspace, shared = make_shared()

        def writer(api):
            yield Instr.store(shared.base, src=R(0), op=Op.ISTORE, site=11)

        def reader(api):
            yield Instr.load(shared.base, dst=R(1), op=Op.ILOAD, site=22)

        findings = detect_races([writer, reader], aspace, name="t")
        errs = errors(findings)
        assert len(errs) == 1
        assert errs[0].data["kind"] in ("store/load", "load/store")
        assert errs[0].data["region"] == "shared"
        assert "11" in errs[0].site and "22" in errs[0].site

    def test_store_store_pair_detected(self):
        aspace, shared = make_shared()

        def t0(api):
            yield Instr.store(shared.base, src=R(0), op=Op.ISTORE, site=1)

        def t1(api):
            yield Instr.store(shared.base, src=R(0), op=Op.ISTORE, site=2)

        findings = detect_races([t0, t1], aspace)
        assert any(f.data.get("kind") == "store/store"
                   for f in errors(findings))

    def test_disjoint_addresses_are_silent(self):
        aspace, shared = make_shared()

        def t0(api):
            yield Instr.store(shared.base, src=R(0), op=Op.ISTORE, site=1)

        def t1(api):
            yield Instr.store(shared.base + 64, src=R(0), op=Op.ISTORE,
                              site=2)

        assert detect_races([t0, t1], aspace) == []

    def test_single_thread_never_races(self):
        aspace, shared = make_shared()

        def t0(api):
            yield Instr.store(shared.base, src=R(0), op=Op.ISTORE, site=1)

        assert detect_races([t0], aspace) == []


class TestSynchronized:
    def test_syncvar_orders_the_pair(self):
        aspace, shared = make_shared()
        ready = SyncVar(aspace, "ready")

        def producer(api):
            yield Instr.store(shared.base, src=R(0), op=Op.ISTORE, site=1)
            yield from advance_var(ready, api)

        def consumer(api):
            yield from wait_ge(ready, 1, api)
            yield Instr.load(shared.base, dst=R(1), op=Op.ILOAD, site=2)

        assert errors(detect_races([producer, consumer], aspace)) == []

    def test_barrier_orders_phases(self):
        aspace, shared = make_shared()
        barrier = SenseBarrier(2, aspace)

        def writer(api):
            yield Instr.store(shared.base, src=R(0), op=Op.ISTORE, site=1)
            yield from barrier.wait(api)

        def reader(api):
            yield from barrier.wait(api)
            yield Instr.load(shared.base, dst=R(1), op=Op.ILOAD, site=2)

        assert errors(detect_races([writer, reader], aspace)) == []

    def test_missing_barrier_is_detected(self):
        aspace, shared = make_shared()
        barrier = SenseBarrier(2, aspace)

        def writer(api):
            yield from barrier.wait(api)
            yield Instr.store(shared.base, src=R(0), op=Op.ISTORE, site=1)

        def reader(api):
            yield from barrier.wait(api)
            yield Instr.load(shared.base, dst=R(1), op=Op.ILOAD, site=2)

        assert errors(detect_races([writer, reader], aspace))


class TestPrefetchExemption:
    def test_pf_dst_load_is_info_only(self):
        aspace, shared = make_shared()

        def worker(api):
            yield Instr.store(shared.base, src=R(0), op=Op.ISTORE, site=1)

        def helper(api):
            yield Instr.load(shared.base, dst=F(14), op=Op.FLOAD, site=2)

        findings = detect_races([worker, helper], aspace)
        assert findings and errors(findings) == []
        assert all(f.severity is Severity.INFO for f in findings)
        assert all(f.data["prefetch"] for f in findings)

    def test_prefetch_uop_is_ignored(self):
        aspace, shared = make_shared()

        def worker(api):
            yield Instr.store(shared.base, src=R(0), op=Op.ISTORE, site=1)

        def helper(api):
            yield Instr(Op.PREFETCH, addr=shared.base, site=2)

        assert detect_races([worker, helper], aspace) == []


class TestBudget:
    def test_budget_exhaustion_reports_partial_coverage(self):
        aspace, shared = make_shared()

        def busy(api):
            while True:
                yield Instr.arith(Op.IADD, dst=R(0), src=R(8), site=1)

        findings = detect_races([busy, busy], aspace, budget=200)
        assert findings
        assert all(f.severity is Severity.INFO for f in findings)
        assert any("coverage is partial" in f.message for f in findings)

    def test_mutual_wait_flags_possible_deadlock(self):
        aspace, _ = make_shared()
        never = SyncVar(aspace, "never")

        def waiter(api):
            yield from wait_ge(never, 1, api)

        findings = detect_races([waiter, waiter], aspace, budget=5_000)
        assert any(f.severity is Severity.WARNING
                   and "deadlock" in f.message for f in findings)
