"""Tests for the SPR span checker (pass 4)."""

from repro.check import verify_span_plan, verify_span_request
from repro.check.findings import Severity
from repro.mem.config import MemConfig
from repro.spr.spans import SpanPlan, plan_spans


def severities(findings):
    return [f.severity for f in findings]


class TestRequest:
    def test_default_quarter_is_clean(self):
        assert verify_span_request("ok", 4096, 64) == []

    def test_fraction_outside_window_is_error(self):
        findings = verify_span_request("bad", 4096, 64, fraction=0.75)
        assert severities(findings) == [Severity.ERROR]
        assert findings[0].data["fraction"] == 0.75
        assert "[1/A, 1/2]" in findings[0].message

    def test_fraction_below_window_is_error(self):
        cfg = MemConfig()
        too_small = 0.5 / cfg.l2_assoc
        findings = verify_span_request("bad", 4096, 64, fraction=too_small,
                                       mem_config=cfg)
        assert severities(findings) == [Severity.ERROR]

    def test_window_boundaries_accepted(self):
        cfg = MemConfig()
        assert verify_span_request("lo", 4096, 64,
                                   fraction=1.0 / cfg.l2_assoc,
                                   mem_config=cfg) == []
        ok = verify_span_request("hi", 4096, 64, fraction=0.5,
                                 mem_config=cfg)
        assert Severity.ERROR not in severities(ok)

    def test_bad_geometry_is_error(self):
        findings = verify_span_request("bad", 0, 64)
        assert severities(findings) == [Severity.ERROR]
        assert "total_items=0" in findings[0].message

    def test_matches_plan_spans_arithmetic(self):
        """The no-raise mirror must agree with the real planner."""
        cfg = MemConfig()
        plan = plan_spans(4096, 64, mem_config=cfg)
        assert verify_span_request("ok", 4096, 64, mem_config=cfg) == []
        assert verify_span_plan("ok", plan, mem_config=cfg) == []


class TestPlan:
    def test_zero_lookahead_is_error(self):
        plan = SpanPlan(span_bytes=4096, items_per_span=64, num_spans=8,
                        lookahead=0)
        findings = verify_span_plan("bad", plan)
        assert any(f.severity is Severity.ERROR and "lookahead"
                   in f.message for f in findings)

    def test_oversized_span_is_error(self):
        cfg = MemConfig()
        plan = SpanPlan(span_bytes=cfg.l2_size, items_per_span=16,
                        num_spans=4)
        findings = verify_span_plan("bad", plan, mem_config=cfg)
        assert any(f.severity is Severity.ERROR and "exceeds L2/2"
                   in f.message for f in findings)

    def test_single_oversized_item_degrades_to_warning(self):
        cfg = MemConfig()
        plan = SpanPlan(span_bytes=cfg.l2_size, items_per_span=1,
                        num_spans=4)
        findings = verify_span_plan("lu-tile", plan, mem_config=cfg)
        assert [f.severity for f in findings
                if "single item" in f.message] == [Severity.WARNING]

    def test_tiny_spans_are_advisory(self):
        cfg = MemConfig()
        plan = SpanPlan(span_bytes=64, items_per_span=1, num_spans=100)
        findings = verify_span_plan("small", plan, mem_config=cfg)
        assert findings
        assert all(f.severity is Severity.INFO for f in findings)

    def test_combined_footprint_warning(self):
        cfg = MemConfig()
        span = int(cfg.l2_size * 0.5)
        plan = SpanPlan(span_bytes=span, items_per_span=8, num_spans=4,
                        lookahead=3)
        findings = verify_span_plan("deep lookahead", plan, mem_config=cfg)
        assert any(f.severity is Severity.WARNING
                   and "working set" in f.message for f in findings)

    def test_shipped_workload_plans_are_clean(self):
        """Every pfetch workload's published plan passes the window."""
        from repro.workloads import WORKLOADS
        from repro.workloads.common import Variant

        checked = 0
        for app, variant in (("mm", Variant.TLP_PFETCH),
                             ("lu", Variant.TLP_PFETCH),
                             ("cg", Variant.TLP_PFETCH),
                             ("bt", Variant.TLP_PFETCH)):
            from repro.core.apps import APP_SIZES

            build = WORKLOADS[app].build(variant, **APP_SIZES[app][0])
            plan = build.meta.get("span_plan")
            assert plan is not None, f"{app} publishes no span_plan"
            findings = verify_span_plan(app, plan)
            assert not [f for f in findings
                        if f.severity is Severity.ERROR]
            checked += 1
        assert checked == 4
