"""The sweep engine's fail-fast pre-flight (passes 1-4 over cells)."""

import pytest

from repro.check import preflight_cells
from repro.common.errors import CheckError
from repro.isa.streams import ILP
from repro.sweep.cache import ResultCache
from repro.sweep.cells import SweepCell, app_cell, stream_cell, table1_cell
from repro.sweep.engine import SweepEngine
from repro.workloads.common import Variant


def cache_entries(cache_dir):
    return list((cache_dir / "objects").rglob("*.json"))


class TestPreflightCells:
    def test_clean_stream_cells_pass(self):
        cells = [stream_cell("iadd", ILP.MAX, threads=1),
                 stream_cell("fdiv", ILP.MIN, threads=2)]
        preflight_cells(cells)  # must not raise

    def test_unknown_stream_rejected(self):
        cell = SweepCell(kind="stream-cpi",
                         config={"stream": "bogus", "ilp": "MAX"})
        with pytest.raises(CheckError) as exc:
            preflight_cells([cell])
        assert "bogus" in str(exc.value)
        assert "nothing was simulated or cached" in str(exc.value)

    def test_stale_stream_recipe_rejected(self):
        cell = stream_cell("iadd", ILP.MAX, threads=1)
        cell.config["recipe"] = {"ops": ["FADD"], "stride": 1}
        with pytest.raises(CheckError) as exc:
            preflight_cells([cell])
        assert "different recipe" in str(exc.value)

    def test_stale_workload_fingerprint_rejected(self):
        cell = app_cell("mm", Variant.TLP_COARSE, {"n": 16})
        cell.config["workload_sha"] = "0" * 16
        with pytest.raises(CheckError) as exc:
            preflight_cells([cell])
        assert "fingerprint" in str(exc.value)

    def test_stale_table1_fingerprint_rejected(self):
        cell = table1_cell("mm", "column", {"n": 16})
        cell.config["workload_sha"] = "0" * 16
        with pytest.raises(CheckError):
            preflight_cells([cell])

    def test_clean_app_cell_passes(self):
        preflight_cells([app_cell("mm", Variant.TLP_COARSE, {"n": 16})])

    def test_clean_pair_cell_passes(self):
        from repro.sweep.cells import pair_cell

        preflight_cells([pair_cell("fload", "iload", ILP.MAX)])

    def test_poisoned_pair_certificate_rejected_as_compose(
            self, monkeypatch):
        """The gate validates the exact memoized certificate the
        runtime will attach — a poisoned cache entry cannot slip past —
        and tags the rejection with the compose pass so the engine can
        account it separately."""
        import dataclasses

        from repro.check import compose as _compose
        from repro.sweep.cells import pair_cell

        forged = dataclasses.replace(
            _compose.compose_pair("fload", "iload"), joint_period_pos=7)
        monkeypatch.setattr(
            _compose, "cached_pair_certificate",
            lambda *a, **kw: forged)
        with pytest.raises(CheckError) as exc:
            preflight_cells([pair_cell("fload", "iload", ILP.MAX)])
        assert exc.value.check == "compose"
        assert "machine check" in str(exc.value)

    def test_error_mentions_no_check_escape_hatch(self):
        cell = SweepCell(kind="stream-cpi",
                         config={"stream": "bogus", "ilp": "MAX"})
        with pytest.raises(CheckError) as exc:
            preflight_cells([cell])
        assert "--no-check" in str(exc.value)


class TestEnginePreflight:
    def test_broken_cell_rejected_before_simulation_or_cache(self, tmp_path):
        """The acceptance criterion: a broken cell must leave no cache
        entry and reach no runner."""
        cache_dir = tmp_path / "cache"
        engine = SweepEngine(cache=ResultCache(cache_dir))
        good = stream_cell("iadd", ILP.MAX, threads=1)
        bad = stream_cell("iadd", ILP.MIN, threads=1)
        bad.config["recipe"] = {"ops": ["FADD"], "stride": 1}
        with pytest.raises(CheckError):
            engine.run([good, bad])
        assert cache_entries(cache_dir) == []
        assert engine.stats.misses == 0 and engine.stats.hits == 0

    def test_preflight_off_skips_the_gate(self, tmp_path):
        """--no-check: the tampered recipe is a key ingredient only, so
        the cell simulates fine with pre-flight disabled."""
        cache_dir = tmp_path / "cache"
        engine = SweepEngine(cache=ResultCache(cache_dir),
                             preflight=False)
        cell = stream_cell("iadd", ILP.MAX, threads=1)
        cell.config["recipe"] = {"ops": ["FADD"], "stride": 1}
        results = engine.run([cell])
        assert len(results) == 1
        assert len(cache_entries(cache_dir)) == 1

    def test_empty_cell_list_is_fine(self):
        assert SweepEngine().run([]) == []


class TestCLIPlumbing:
    def test_no_check_flag_accepted(self, capsys):
        from repro.cli import main

        assert main(["table1", "--no-cache", "--no-check"]) == 0
        assert "mm" in capsys.readouterr().out
