"""Regression tests for the tiled-recurrence certification memo.

The expensive part of ``certify_tiled`` is the O(nphases^2) window
scan.  Rebuilding a workload with identical geometry must reuse the
memoized certificate — in particular for verdict-``none`` traces (LU
serial), which previously paid the full scan on every rebuild just to
relearn that nothing is certifiable.
"""

import pytest

import repro.check.recurrence as recurrence
from repro.check.recurrence import reset_scan_counters, scan_counters
from repro.pintool import DryRunAPI
from repro.workloads import lu, matmul
from repro.workloads.common import Variant


def _certify_lu(n=16, tile=8):
    """Build LU serial and bind its (recordable) thread factory: this
    compiles the tiled trace and runs certification — no simulation."""
    build = lu.build(Variant.SERIAL, n=n, tile=tile)
    return build.factories[0](DryRunAPI(aspace=build.aspace))


@pytest.fixture(autouse=True)
def clean_memo():
    recurrence._TILED_MEMO.clear()
    reset_scan_counters()
    yield
    recurrence._TILED_MEMO.clear()
    reset_scan_counters()


class TestMemo:
    def test_second_identical_build_skips_the_scan(self):
        trace1 = _certify_lu()
        first = reset_scan_counters()
        assert first["scans"] >= 1
        assert first["memo_hits"] == 0

        trace2 = _certify_lu()
        second = scan_counters()
        assert second["scans"] == 0
        assert second["memo_hits"] >= 1
        # LU serial is the verdict-'none' case this satellite exists
        # for: the rebuild must skip the scan *and* remember that the
        # answer was "nothing certifiable".
        assert second["none_skips"] >= 1
        assert trace1.cert.verdict == "none"
        assert trace2.cert.verdict == trace1.cert.verdict

    def test_memoized_certificate_is_equivalent(self):
        c1 = _certify_lu().cert
        c2 = _certify_lu().cert
        assert c2.verdict == c1.verdict
        assert c2.fingerprint() == c1.fingerprint()

    def test_different_geometry_rescans(self):
        _certify_lu(n=16, tile=8)
        reset_scan_counters()
        _certify_lu(n=16, tile=4)
        snap = scan_counters()
        assert snap["scans"] >= 1

    def test_recurrent_verdict_also_memoized(self):
        """The memo is not 'none'-only: a certifiable trace (matmul
        serial) reuses its positive certificate too."""
        def build_mm():
            b = matmul.build(Variant.SERIAL)
            return b.factories[0](DryRunAPI(aspace=b.aspace))

        t1 = build_mm()
        reset_scan_counters()
        t2 = build_mm()
        snap = scan_counters()
        assert snap["scans"] == 0
        assert snap["memo_hits"] >= 1
        assert t2.cert.verdict == t1.cert.verdict
        assert t2.cert.fingerprint() == t1.cert.fingerprint()


class TestCounters:
    def test_reset_returns_pre_reset_snapshot(self):
        _certify_lu()
        live = scan_counters()
        snap = reset_scan_counters()
        assert snap == live
        assert scan_counters() == {"scans": 0, "memo_hits": 0,
                                   "none_skips": 0}

    def test_snapshot_is_a_copy(self):
        snap = scan_counters()
        snap["scans"] = 999
        assert scan_counters()["scans"] != 999
