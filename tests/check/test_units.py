"""Tests for the unit-legality pass (pass 2)."""

from repro.check import pair_contention, verify_ops
from repro.check.findings import Severity
from repro.check.units import ALL_UNITS
from repro.isa.opcodes import Op
from repro.isa.streams import STREAM_OPS


class TestVerifyOps:
    def test_all_shipped_streams_route(self):
        for name, ops in STREAM_OPS.items():
            assert verify_ops(name, ops) == []

    def test_missing_unit_is_illegal(self):
        findings = verify_ops(
            "fdiv", [Op.FDIV],
            available_units=frozenset(ALL_UNITS - {"fpdiv"}))
        assert len(findings) == 1
        assert findings[0].severity is Severity.ERROR
        assert "FDIV" in findings[0].message
        assert "fpdiv" in str(findings[0].data["route"])

    def test_unknown_unit_name_rejected(self):
        findings = verify_ops("x", [Op.IADD],
                              available_units=frozenset({"alu0", "gpu"}))
        assert any("unknown unit" in f.message for f in findings)

    def test_ops_deduplicated(self):
        findings = verify_ops(
            "fdiv", [Op.FDIV] * 10,
            available_units=frozenset(ALL_UNITS - {"fpdiv"}))
        assert len(findings) == 1


class TestPairContention:
    def test_fdiv_pair_serializes_on_the_divider(self):
        findings = pair_contention("fdiv", STREAM_OPS["fdiv"],
                                   "fdiv", STREAM_OPS["fdiv"])
        assert len(findings) == 1
        assert findings[0].severity is Severity.INFO
        assert findings[0].data["unit"] == "fpdiv"
        assert "non-pipelined" in findings[0].message

    def test_logical_pair_hits_alu0(self):
        findings = pair_contention("ilogic", STREAM_OPS["ilogic"],
                                   "ilogic", STREAM_OPS["ilogic"])
        assert any(f.data.get("unit") == "alu0" for f in findings)

    def test_independent_streams_are_silent(self):
        assert pair_contention("iadd", STREAM_OPS["iadd"],
                               "fadd", STREAM_OPS["fadd"]) == []
