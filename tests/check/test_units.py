"""Tests for the unit-legality pass (pass 2)."""

from repro.check import pair_contention, verify_ops
from repro.check.findings import Severity
from repro.check.units import ALL_UNITS
from repro.isa.opcodes import Op
from repro.isa.streams import STREAM_OPS


class TestVerifyOps:
    def test_all_shipped_streams_route(self):
        for name, ops in STREAM_OPS.items():
            assert verify_ops(name, ops) == []

    def test_missing_unit_is_illegal(self):
        findings = verify_ops(
            "fdiv", [Op.FDIV],
            available_units=frozenset(ALL_UNITS - {"fpdiv"}))
        assert len(findings) == 1
        assert findings[0].severity is Severity.ERROR
        assert "FDIV" in findings[0].message
        assert "fpdiv" in str(findings[0].data["route"])

    def test_unknown_unit_name_rejected(self):
        findings = verify_ops("x", [Op.IADD],
                              available_units=frozenset({"alu0", "gpu"}))
        assert any("unknown unit" in f.message for f in findings)

    def test_ops_deduplicated(self):
        findings = verify_ops(
            "fdiv", [Op.FDIV] * 10,
            available_units=frozenset(ALL_UNITS - {"fpdiv"}))
        assert len(findings) == 1


class TestPairContention:
    def test_fdiv_pair_serializes_on_the_divider(self):
        """Figure 2: the fdiv x fdiv cell is the worst slowdown in the
        paper, and the only mechanism is the single non-pipelined
        divider — exactly one advisory, on fpdiv."""
        findings = pair_contention("fdiv", STREAM_OPS["fdiv"],
                                   "fdiv", STREAM_OPS["fdiv"])
        assert len(findings) == 1
        assert findings[0].severity is Severity.INFO
        assert findings[0].data["unit"] == "fpdiv"
        assert "non-pipelined" in findings[0].message

    def test_logical_pair_hits_alu0(self):
        """The §5.3 bottleneck: logicals execute only on ALU0, so the
        pair serializes there and nowhere else."""
        findings = pair_contention("ilogic", STREAM_OPS["ilogic"],
                                   "ilogic", STREAM_OPS["ilogic"])
        assert len(findings) == 1
        assert findings[0].severity is Severity.INFO
        assert findings[0].data["unit"] == "alu0"
        assert "§5.3" in findings[0].message

    def test_mixed_fadd_mul_pairs_share_fpexec(self):
        """Figure 2(a): every FP add/mul combination (including the
        blended fadd-mul stream) contends for the one FP execute unit —
        exactly one advisory, on fpexec."""
        for a, b in (("fadd", "fmul"), ("fadd-mul", "fadd"),
                     ("fadd-mul", "fmul"), ("fadd-mul", "fadd-mul")):
            findings = pair_contention(a, STREAM_OPS[a], b, STREAM_OPS[b])
            assert len(findings) == 1, (a, b)
            assert findings[0].severity is Severity.INFO
            assert findings[0].data["unit"] == "fpexec"

    def test_fp_pairs_on_different_units_are_silent(self):
        """Figure 2(a) also shows the non-shared cells: the divider
        stream and the adder stream use different units, so the model
        predicts (and the paper measures) no serialization."""
        assert pair_contention("fdiv", STREAM_OPS["fdiv"],
                               "fadd", STREAM_OPS["fadd"]) == []

    def test_independent_streams_are_silent(self):
        assert pair_contention("iadd", STREAM_OPS["iadd"],
                               "fadd", STREAM_OPS["fadd"]) == []
