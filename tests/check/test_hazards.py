"""Tests for the hazard/ILP verifier (pass 1)."""

import pytest

from repro.check import chain_stats, verify_instrs, verify_stream
from repro.check.findings import Severity
from repro.isa import Instr, Op, R
from repro.isa.streams import ILP, STREAM_OPS, StreamSpec


def serialized(n):
    """One RAW chain: every op reads and writes R(0)."""
    return [Instr.arith(Op.IADD, dst=R(0), src=R(8)) for _ in range(n)]


def rotated(n, targets):
    """|targets| disjoint two-operand chains."""
    return [Instr.arith(Op.IADD, dst=R(i % targets), src=R(8))
            for i in range(n)]


def three_operand(n):
    """No RAW chains at all: dst not among srcs."""
    return [Instr(Op.IADD, dst=R(i % 6), srcs=(R(8),)) for i in range(n)]


class TestChainStats:
    def test_serialized_chain_width_one(self):
        stats = chain_stats(serialized(24))
        assert stats.critical_path == 24
        assert stats.width == pytest.approx(1.0)
        assert stats.distinct_targets == 1

    def test_rotation_realizes_target_count(self):
        for t in (1, 3, 6):
            stats = chain_stats(rotated(24, t))
            assert stats.width == pytest.approx(t)
            assert stats.distinct_targets == t

    def test_broken_chains_go_wide(self):
        stats = chain_stats(three_operand(24))
        assert stats.critical_path == 1
        assert stats.width == pytest.approx(24)

    def test_empty_window(self):
        stats = chain_stats([])
        assert stats.instructions == 0 and stats.width == 0.0


class TestVerifyInstrs:
    def test_correct_declaration_passes(self):
        assert verify_instrs("ok", rotated(24, 3), 3) == []

    def test_serialized_stream_flagged(self):
        findings = verify_instrs("bad", serialized(24), 6)
        assert len(findings) == 1
        assert findings[0].severity is Severity.ERROR
        assert "serialized" in findings[0].message
        assert findings[0].data["declared"] == 6

    def test_broken_chains_flagged(self):
        findings = verify_instrs("bad", three_operand(24), 6)
        assert len(findings) == 1
        assert "broken" in findings[0].message

    def test_nonpositive_ilp_rejected(self):
        findings = verify_instrs("bad", rotated(6, 1), 0)
        assert findings and findings[0].severity is Severity.ERROR

    def test_load_stream_checks_target_rotation(self):
        loads = [Instr.load(64 * i, dst=R(i % 2), op=Op.FLOAD)
                 for i in range(12)]
        assert verify_instrs("loads", loads, 2) == []
        findings = verify_instrs("loads", loads, 3)
        assert findings and "destination" in findings[0].message

    def test_store_streams_exempt(self):
        stores = [Instr.store(64 * i, src=R(0), op=Op.FSTORE)
                  for i in range(12)]
        assert verify_instrs("stores", stores, 6) == []


class TestVerifyStream:
    @pytest.mark.parametrize("name", sorted(STREAM_OPS))
    @pytest.mark.parametrize("ilp", list(ILP))
    def test_every_shipped_stream_is_clean(self, name, ilp):
        assert verify_stream(StreamSpec(name, ilp=ilp)) == []

    def test_wrong_declaration_detected(self):
        findings = verify_stream(StreamSpec("iadd", ilp=ILP.MIN),
                                 declared_ilp=6)
        assert findings and findings[0].severity is Severity.ERROR
