"""Tests for the determinism lint (pass 5)."""

from pathlib import Path

from repro.check import lint_paths, lint_source
from repro.check.findings import Severity

FIXTURES = Path(__file__).parent / "fixtures"


def rules(findings):
    return [f.data["rule"] for f in findings]


class TestRules:
    def test_wall_clock(self):
        findings = lint_source("x.py", "import time\nt = time.time()\n")
        assert rules(findings) == ["wall-clock"]

    def test_wall_clock_pragma_allows(self):
        src = "import time\nt = time.time()  # check: allow(wall-clock)\n"
        assert lint_source("x.py", src) == []

    def test_unseeded_global_random(self):
        findings = lint_source("x.py",
                               "import random\nx = random.random()\n")
        assert rules(findings) == ["unseeded-random"]

    def test_seeded_rng_ok(self):
        src = ("import random\nrng = random.Random(42)\n"
               "x = rng.random()\n")
        assert lint_source("x.py", src) == []

    def test_numpy_alias_resolved(self):
        src = "import numpy as np\nx = np.random.rand(3)\n"
        assert rules(lint_source("x.py", src)) == ["unseeded-random"]

    def test_default_rng_needs_seed(self):
        src = "import numpy as np\nr = np.random.default_rng()\n"
        assert rules(lint_source("x.py", src)) == ["unseeded-random"]
        assert lint_source(
            "x.py", "import numpy as np\nr = np.random.default_rng(7)\n"
        ) == []

    def test_builtin_hash(self):
        findings = lint_source("x.py", "h = hash('key')\n")
        assert rules(findings) == ["builtin-hash"]
        assert lint_source(
            "x.py", "import hashlib\nh = hashlib.sha256(b'key')\n") == []

    def test_set_iteration(self):
        findings = lint_source(
            "x.py", "for x in {'a', 'b'}:\n    print(x)\n")
        assert rules(findings) == ["set-iteration"]

    def test_sorted_set_iteration_ok(self):
        assert lint_source(
            "x.py", "out = [x for x in sorted({'a', 'b'})]\n") == []

    def test_unordered_fs(self):
        findings = lint_source("x.py",
                               "import os\nnames = os.listdir('.')\n")
        assert rules(findings) == ["unordered-fs"]

    def test_fs_inside_reducer_ok(self):
        assert lint_source(
            "x.py", "import os\nn = len(os.listdir('.'))\n") == []
        assert lint_source(
            "x.py", "import os\nnames = sorted(os.listdir('.'))\n") == []

    def test_path_glob_method(self):
        src = ("from pathlib import Path\n"
               "files = list(Path('.').rglob('*.py'))\n")
        assert rules(lint_source("x.py", src)) == ["unordered-fs"]

    def test_syntax_error_reported(self):
        findings = lint_source("x.py", "def broken(:\n")
        assert findings and "does not parse" in findings[0].message


class TestPaths:
    def test_fixture_tree_flags_every_rule(self):
        findings, count = lint_paths(FIXTURES / "nondet_src")
        assert count == 1
        got = set(rules(findings))
        assert got == {"wall-clock", "unseeded-random", "builtin-hash",
                       "unordered-fs", "set-iteration"}
        assert all(f.severity is Severity.ERROR for f in findings)
        assert all(f.site.startswith("bad.py:") for f in findings)

    def test_repo_source_tree_is_clean(self):
        src_root = Path(__file__).parents[2] / "src"
        findings, count = lint_paths(src_root)
        assert count > 50
        assert findings == []
