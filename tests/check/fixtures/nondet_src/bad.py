"""Seeded defect: every determinism-lint rule in one file."""

import glob
import random
import time


def jitter():
    return random.random() + time.time()


def tag(payload):
    return hash(payload)


def first_log():
    for name in glob.glob("*.log"):
        return name


def drain(items):
    for item in {"a", "b", "c"}:
        items.append(item)
