"""Seeded defect: two threads sharing a region with no ordering edge.

The writer publishes sums into ``shared`` and the reader consumes them,
but nothing synchronizes the pair — every overlapping store/load is a
data race.
"""

from repro.check import ProgramTarget
from repro.common.addrspace import AddressSpace
from repro.isa import Instr, Op, R

aspace = AddressSpace()
shared = aspace.alloc("shared", 128)


def writer(api):
    for i in range(16):
        yield Instr.arith(Op.IADD, dst=R(0), src=R(8), site=100)
        yield Instr.store(shared.base + 8 * (i % 16), src=R(0),
                          op=Op.ISTORE, site=101)


def reader(api):
    for i in range(16):
        yield Instr.load(shared.base + 8 * (i % 16), dst=R(1),
                         op=Op.ILOAD, site=201)
        yield Instr.arith(Op.IADD, dst=R(2), src=R(1), site=202)


TARGETS = [
    ProgramTarget("racy two-thread program", [writer, reader], aspace),
]
