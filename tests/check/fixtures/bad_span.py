"""Seeded defect: an SPR span request outside the [1/A, 1/2] window."""

from repro.check import SpanTarget

TARGETS = [
    SpanTarget("oversized span request", total_items=4096,
               bytes_per_item=64, fraction=0.75),
]
