"""Seeded defect: a stream whose declared |T| contradicts its chains.

The ``iadd`` rotation at MIN ILP realizes one RAW chain; declaring
|T| = 6 against it is exactly the fig.-1 mislabeling the hazard pass
exists to catch.
"""

from repro.check import StreamTarget
from repro.isa.streams import ILP, StreamSpec

TARGETS = [
    StreamTarget(StreamSpec("iadd", ilp=ILP.MIN), declared_ilp=6),
]
