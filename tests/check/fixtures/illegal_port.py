"""Seeded defect: a stream routed to a port the machine lacks.

``fdiv`` executes only on the ``fpdiv`` unit; a machine exposing just
the integer ALUs and memory ports cannot issue it.
"""

from repro.check import CheckTarget, verify_ops
from repro.isa.opcodes import Op


class RestrictedMachineTarget(CheckTarget):
    name = "fdiv stream on a machine without fpdiv"

    def check(self):
        return verify_ops(
            self.name, [Op.FDIV],
            available_units=frozenset({"alu0", "alu1", "load", "store"}),
        )


TARGETS = [RestrictedMachineTarget()]
