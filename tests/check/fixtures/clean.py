"""A correct experiment: every target passes all applicable passes."""

from repro.check import ProgramTarget, SpanTarget, StreamTarget
from repro.common.addrspace import AddressSpace
from repro.isa import Instr, Op, R
from repro.isa.streams import ILP, StreamSpec
from repro.runtime import SyncVar, advance_var, wait_ge

aspace = AddressSpace()
shared = aspace.alloc("shared", 64)
ready = SyncVar(aspace, "ready")


def producer(api):
    for i in range(8):
        yield Instr.arith(Op.IADD, dst=R(0), src=R(8), site=100)
        yield Instr.store(shared.base + 8 * i, src=R(0),
                          op=Op.ISTORE, site=101)
    yield from advance_var(ready, api)


def consumer(api):
    yield from wait_ge(ready, 1, api)
    for i in range(8):
        yield Instr.load(shared.base + 8 * i, dst=R(1),
                         op=Op.ILOAD, site=201)


TARGETS = [
    StreamTarget(StreamSpec("iadd", ilp=ILP.MAX)),
    StreamTarget(StreamSpec("fload", ilp=ILP.MED)),
    ProgramTarget("synchronized pair", [producer, consumer], aspace),
    SpanTarget("quarter-L2 spans", total_items=4096, bytes_per_item=64),
]
