"""The recurrence certification pass: lattice facts, window scanning,
machine checking, and the static/dynamic agreement property.

The property test at the bottom is the soundness contract in
miniature: for any legal stream, the statically certified position
period must divide every position delta the dynamic detector proves
and jumps by — or the detector must decline to jump at all.  The
``last_jump()`` hook observes the anchor pair without feeding back
into detection.
"""

import dataclasses

from hypothesis import HealthCheck, given, seed, settings
from hypothesis import strategies as st

from repro.check.recurrence import (
    RECURRENCE_SCHEMA_VERSION,
    RecurrenceCertificate,
    attach_certificate,
    cache_geometry,
    certify_stream,
    certify_tiled,
    certify_trace,
)
from repro.common.addrspace import AddressSpace
from repro.core.streams import _VECTOR_BYTES
from repro.cpu import fastpath as _fastpath
from repro.isa import F, Instr, Op
from repro.isa.streams import ILP, STREAM_OPS, StreamSpec
from repro.isa.trace import PHASE, compile_stream, compile_tiled
from repro.runtime.program import Program


def _stream_trace(name, ilp=ILP.MAX, stride=1, count=1 << 30):
    spec = StreamSpec(name, ilp=ilp, count=count, stride=stride)
    region = None
    if spec.is_memory:
        region = AddressSpace().alloc("v", _VECTOR_BYTES, elem_size=1)
    return compile_stream(spec, region)


def _cyclic_tiled(tiles=4, passes=16, lines_per_tile=8):
    aspace = AddressSpace()
    region = aspace.alloc("a", tiles * lines_per_tile * 64)

    def gen():
        for _p in range(passes):
            for tile in range(tiles):
                base = region.base + tile * lines_per_tile * 64
                for j in range(lines_per_tile):
                    yield Instr.load(base + j * 64, dst=F(0))
                    yield Instr.arith(Op.FADD, dst=F(1), src=F(0))
                yield PHASE

    return compile_tiled(gen(), [region])


def _aperiodic_tiled(tiles=16, lines_per_tile=8):
    aspace = AddressSpace()
    region = aspace.alloc("a", tiles * tiles * lines_per_tile * 64)

    def gen():
        for tile in range(tiles):
            base = region.base + tile * tile * lines_per_tile * 64
            for j in range(lines_per_tile):
                yield Instr.load(base + j * 64, dst=F(0))
                yield Instr.arith(Op.FADD, dst=F(1), src=F(0))
            yield PHASE

    return compile_tiled(gen(), [region])


class TestStreamLattice:
    def test_arith_period_is_the_rotation(self):
        trace = _stream_trace("fadd")
        cert = certify_stream(trace)
        assert cert.verdict == "periodic"
        assert cert.translation == "arith"
        assert cert.period_pos == trace.pattern_len

    def test_memory_period_is_a_pattern_multiple(self):
        cert = certify_stream(_stream_trace("fload"))
        assert cert.verdict == "periodic"
        assert cert.translation in ("sliding", "pass-identity")
        assert cert.period_pos > 0

    def test_every_catalog_stream_is_periodic(self):
        for name in sorted(STREAM_OPS):
            for ilp in ILP:
                cert = certify_stream(_stream_trace(name, ilp))
                assert cert.verdict == "periodic", (name, ilp)
                assert cert.period_pos > 0


class TestTiledWindows:
    def test_cyclic_trace_certifies_recurrent(self):
        cert = certify_tiled(_cyclic_tiled())
        assert cert.verdict == "recurrent"
        assert cert.windows
        assert cert.aligned_phases()
        # Whole-pass identity: some window advances with zero deltas.
        assert any(not any(w.deltas) for w in cert.windows)

    def test_aperiodic_trace_certifies_none(self):
        cert = certify_tiled(_aperiodic_tiled())
        assert cert.verdict == "none"
        assert not cert.windows
        assert cert.aligned_phases() == ()

    def test_certify_trace_dispatches_and_rejects(self):
        assert certify_trace(_cyclic_tiled()).kind == "tiled"
        assert certify_trace(_stream_trace("iadd")).kind == "stream"
        assert certify_trace(iter([])) is None

    def test_attach_hangs_certificate_on_tiled_only(self):
        trace = attach_certificate(_cyclic_tiled())
        assert trace.cert is not None
        assert trace.cert.verdict == "recurrent"
        stream = attach_certificate(_stream_trace("iadd"))
        assert not hasattr(stream, "cert")


class TestMachineCheck:
    def test_honest_certificates_validate_clean(self):
        tiled = _cyclic_tiled()
        assert certify_tiled(tiled).validate(tiled) == []
        stream = _stream_trace("fload")
        assert certify_stream(stream).validate(stream) == []

    def test_wrong_trace_is_rejected(self):
        cert = certify_tiled(_cyclic_tiled())
        problems = cert.validate(_aperiodic_tiled())
        assert problems

    def test_forged_verdict_is_rejected(self):
        trace = _aperiodic_tiled()
        cert = dataclasses.replace(certify_tiled(trace),
                                   verdict="recurrent")
        assert any("recurrent" in p for p in cert.validate(trace))

    def test_stale_schema_version_is_rejected(self):
        trace = _cyclic_tiled()
        cert = dataclasses.replace(
            certify_tiled(trace),
            schema_version=RECURRENCE_SCHEMA_VERSION + 1)
        assert any("schema_version" in p for p in cert.validate(trace))

    def test_kind_mismatch_is_rejected(self):
        stream_cert = certify_stream(_stream_trace("fload"))
        assert stream_cert.validate(_cyclic_tiled())


class TestSerialization:
    def test_round_trip_preserves_everything(self):
        cert = certify_tiled(_cyclic_tiled(), subject="mm/serial/t0")
        back = RecurrenceCertificate.from_dict(cert.to_dict())
        assert back == cert

    def test_fingerprint_ignores_the_subject(self):
        cert = certify_tiled(_cyclic_tiled(), subject="")
        relabeled = dataclasses.replace(cert, subject="mm/serial/t0")
        assert cert.fingerprint() == relabeled.fingerprint()

    def test_fingerprint_sees_structure(self):
        cert = certify_tiled(_cyclic_tiled())
        other = certify_tiled(_aperiodic_tiled())
        assert cert.fingerprint() != other.fingerprint()

    def test_geometry_is_positive(self):
        pm, gb = cache_geometry()
        assert pm > 0 and gb > 0


# ---------------------------------------------------------------------------
# Static/dynamic agreement (the soundness property)
# ---------------------------------------------------------------------------

@seed(20260808)
@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(name=st.sampled_from(sorted(STREAM_OPS)),
       ilp=st.sampled_from(list(ILP)),
       stride=st.integers(min_value=1, max_value=8))
def test_static_period_divides_every_dynamic_jump(name, ilp, stride):
    """For any legal stream: if the dynamic detector proves a pair and
    jumps, every per-thread position delta of the anchor pair is a
    whole multiple of the statically certified ``period_pos``; if no
    sound pair exists within the horizon, both sides stand down (the
    hook stays empty) — never a jump off the lattice."""
    spec = StreamSpec(name, ilp=ilp, count=1 << 30, stride=stride)
    region = None
    if spec.is_memory:
        region = AddressSpace().alloc("v", _VECTOR_BYTES, elem_size=1)
    cert = certify_stream(compile_stream(spec, region))
    assert cert.verdict == "periodic" and cert.period_pos > 0

    _fastpath._last_jump = None
    _fastpath.reset_stats()
    prog = Program(fastpath=True)
    trace = compile_stream(spec, region)
    prog.add_thread(lambda api, tr=trace: tr)
    prog.run(stop_at_tick=30_000)
    jump = _fastpath.last_jump()
    if jump is None:
        assert _fastpath.stats().jumps == 0
        return
    assert jump["k"] >= 1
    for dp in jump["dps"]:
        assert dp % cert.period_pos == 0, (
            f"dynamic jump delta {dp} is off the certified lattice "
            f"(period {cert.period_pos}, {cert.translation})")
