"""The ``repro check`` CLI verb against the seeded defect fixtures.

The acceptance contract: every seeded defect class is detected with a
non-zero exit (human and ``--json`` output), and a correct experiment
passes clean.
"""

import json
from pathlib import Path

import pytest

from repro.check import CHECK_SCHEMA_VERSION
from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"

DEFECTS = {
    "broken_ilp.py": ("hazards", "serialized"),
    "illegal_port.py": ("units", "FDIV"),
    "racy.py": ("races", "unsynchronized"),
    "bad_span.py": ("spans", "[1/A, 1/2]"),
}


class TestSeededDefects:
    @pytest.mark.parametrize("fixture", sorted(DEFECTS))
    def test_defect_fails_with_finding(self, fixture, capsys):
        rc = main(["check", "--experiment", str(FIXTURES / fixture)])
        out = capsys.readouterr().out
        check, needle = DEFECTS[fixture]
        assert rc == 1
        assert "FAIL" in out
        assert f"[{check}]" in out
        assert needle in out

    @pytest.mark.parametrize("fixture", sorted(DEFECTS))
    def test_defect_json_output(self, fixture, capsys):
        rc = main(["check", "--experiment", str(FIXTURES / fixture),
                   "--json"])
        doc = json.loads(capsys.readouterr().out)
        check, _ = DEFECTS[fixture]
        assert rc == 1
        assert doc["schema_version"] == CHECK_SCHEMA_VERSION
        assert doc["ok"] is False
        assert doc["counts"]["ERROR"] >= 1
        assert any(f["check"] == check and f["severity"] == "ERROR"
                   for f in doc["findings"])

    def test_nondeterminism_lint_fixture(self, capsys):
        rc = main(["check", "--lint-src",
                   str(FIXTURES / "nondet_src")])
        out = capsys.readouterr().out
        assert rc == 1
        assert "[lint]" in out
        assert "unseeded-random" in out

    def test_nondeterminism_lint_json(self, capsys):
        rc = main(["check", "--lint-src", str(FIXTURES / "nondet_src"),
                   "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert doc["files_linted"] == 1
        rules = {f["data"]["rule"] for f in doc["findings"]}
        assert "wall-clock" in rules and "builtin-hash" in rules


class TestCleanRuns:
    def test_clean_experiment_passes(self, capsys):
        rc = main(["check", "--experiment", str(FIXTURES / "clean.py")])
        out = capsys.readouterr().out
        assert rc == 0
        assert "repro check: OK" in out

    def test_clean_experiment_json(self, capsys):
        rc = main(["check", "--experiment", str(FIXTURES / "clean.py"),
                   "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert doc["ok"] is True
        assert doc["targets_checked"] == 4

    def test_repo_lint_is_clean(self, capsys):
        src_root = Path(__file__).parents[2] / "src"
        rc = main(["check", "--lint-src", str(src_root)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "files linted" in out


class TestFailOn:
    """--fail-on tightens which severities fail the run (CI contract)."""

    def test_clean_experiment_survives_warn_threshold(self, capsys):
        rc = main(["check", "--experiment", str(FIXTURES / "clean.py"),
                   "--fail-on", "warn"])
        capsys.readouterr()
        assert rc == 0

    def test_info_threshold_fails_on_model_advisories(self, capsys):
        # The clean fixture's stream targets carry INFO bound findings
        # from the model pass, so the strictest threshold must fail.
        rc = main(["check", "--experiment", str(FIXTURES / "clean.py"),
                   "--fail-on", "info"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "repro check: OK" in out  # reporting is unchanged

    def test_errors_fail_at_every_threshold(self, capsys):
        for level in ("error", "warn", "info"):
            rc = main(["check", "--experiment",
                       str(FIXTURES / "broken_ilp.py"),
                       "--fail-on", level])
            capsys.readouterr()
            assert rc == 1, level

    def test_invalid_threshold_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["check", "--fail-on", "pedantic"])
        assert exc.value.code == 2


class TestErrorPaths:
    def test_missing_experiment_file(self, capsys):
        rc = main(["check", "--experiment", "no/such/file.py"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")

    def test_experiment_without_targets(self, tmp_path, capsys):
        exp = tmp_path / "empty.py"
        exp.write_text("x = 1\n")
        rc = main(["check", "--experiment", str(exp)])
        assert rc == 2
        assert "TARGETS" in capsys.readouterr().err

    def test_budget_must_be_positive(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["check", "--budget", "0"])
        assert exc.value.code == 2
