"""CheckReport aggregation: duplicate folding, severity thresholds,
and the versioned JSON contract (golden fixture)."""

import json
from pathlib import Path

from repro.check import StreamTarget, run_targets
from repro.check.findings import (
    CHECK_PASSES,
    CHECK_SCHEMA_ID,
    CHECK_SCHEMA_VERSION,
    CheckReport,
    Finding,
    Severity,
    schema_fingerprint,
)
from repro.isa.streams import ILP, StreamSpec

GOLDEN = Path(__file__).parent / "fixtures" / "findings_schema_v3.json"


def _finding(message="boom", site="here", severity=Severity.ERROR,
             hint=""):
    return Finding(check="units", severity=severity, site=site,
                   message=message, hint=hint)


class TestDeduplication:
    def test_identical_findings_collapse(self):
        report = CheckReport()
        report.extend([_finding()])
        report.extend([_finding()])
        assert len(report.findings) == 1

    def test_distinct_messages_are_kept(self):
        report = CheckReport()
        report.extend([_finding("a"), _finding("b")])
        assert len(report.findings) == 2

    def test_severity_is_part_of_identity(self):
        report = CheckReport()
        report.extend([_finding(severity=Severity.ERROR),
                       _finding(severity=Severity.WARNING)])
        assert len(report.findings) == 2

    def test_duplicate_target_not_double_counted(self):
        """The regression: one stream reachable both via the default
        target list and an --experiment file must not double every one
        of its findings (the model pass INFO lines made this visible).
        """
        target = StreamTarget(StreamSpec("fdiv", ilp=ILP.MAX))
        once = run_targets([target])
        twice = run_targets([target,
                             StreamTarget(StreamSpec("fdiv", ilp=ILP.MAX))])
        assert len(once.findings) > 0
        assert len(twice.findings) == len(once.findings)
        assert twice.targets_checked == 2


class TestExitCodeThresholds:
    def test_default_fails_on_error_only(self):
        report = CheckReport()
        report.extend([_finding(severity=Severity.WARNING)])
        assert report.exit_code == 0
        assert report.exit_code_at(Severity.ERROR) == 0
        assert report.exit_code_at(Severity.WARNING) == 1
        assert report.exit_code_at(Severity.INFO) == 1

    def test_info_threshold_fails_on_anything(self):
        report = CheckReport()
        report.extend([_finding(severity=Severity.INFO)])
        assert report.exit_code_at(Severity.INFO) == 1
        assert report.exit_code_at(Severity.WARNING) == 0

    def test_clean_report_passes_every_threshold(self):
        report = CheckReport()
        for s in Severity:
            assert report.exit_code_at(s) == 0


def _canned_report() -> CheckReport:
    """The exact report the golden fixture was generated from."""
    report = CheckReport(targets_checked=2, files_linted=1)
    report.extend([
        Finding(check="recurrence", severity=Severity.INFO,
                site="mm/tlp-fine/t0",
                message="recurrent: 2 window(s), 1 splice(s)",
                hint="", data={"fingerprint": "deadbeefdeadbeef"}),
        Finding(check="hazards", severity=Severity.ERROR,
                site="stream fdiv",
                message="RAW chain shorter than declared ILP",
                hint="rotate more targets"),
    ])
    return report


class TestSchemaContract:
    """The ``--json`` document is a versioned contract: the envelope
    carries ``(schema_id, schema_version, schema_fingerprint)`` and the
    golden fixture pins the byte-exact rendering.  Any layout change
    must bump :data:`CHECK_SCHEMA_VERSION` and regenerate the fixture —
    these tests make silent drift impossible.
    """

    def test_envelope_identifies_schema(self):
        doc = CheckReport().to_dict()
        assert doc["schema_id"] == CHECK_SCHEMA_ID == "repro.check/findings"
        assert doc["schema_version"] == CHECK_SCHEMA_VERSION == 3
        assert doc["schema_fingerprint"] == schema_fingerprint()

    def test_fingerprint_is_stable_and_well_formed(self):
        fp = schema_fingerprint()
        assert fp == schema_fingerprint()
        assert len(fp) == 16
        int(fp, 16)  # hex

    def test_recurrence_is_a_known_pass(self):
        assert "recurrence" in CHECK_PASSES

    def test_compose_is_a_known_pass(self):
        assert CHECK_PASSES[-1] == "compose"

    def test_golden_fixture_matches_byte_for_byte(self):
        rendered = json.dumps(_canned_report().to_dict(),
                              indent=2, sort_keys=True) + "\n"
        assert rendered == GOLDEN.read_text()

    def test_golden_fixture_pins_the_fingerprint(self):
        doc = json.loads(GOLDEN.read_text())
        assert doc["schema_fingerprint"] == schema_fingerprint()
        assert doc["schema_version"] == CHECK_SCHEMA_VERSION
