"""CheckReport aggregation: duplicate folding and severity thresholds."""

from repro.check import StreamTarget, run_targets
from repro.check.findings import CheckReport, Finding, Severity
from repro.isa.streams import ILP, StreamSpec


def _finding(message="boom", site="here", severity=Severity.ERROR,
             hint=""):
    return Finding(check="units", severity=severity, site=site,
                   message=message, hint=hint)


class TestDeduplication:
    def test_identical_findings_collapse(self):
        report = CheckReport()
        report.extend([_finding()])
        report.extend([_finding()])
        assert len(report.findings) == 1

    def test_distinct_messages_are_kept(self):
        report = CheckReport()
        report.extend([_finding("a"), _finding("b")])
        assert len(report.findings) == 2

    def test_severity_is_part_of_identity(self):
        report = CheckReport()
        report.extend([_finding(severity=Severity.ERROR),
                       _finding(severity=Severity.WARNING)])
        assert len(report.findings) == 2

    def test_duplicate_target_not_double_counted(self):
        """The regression: one stream reachable both via the default
        target list and an --experiment file must not double every one
        of its findings (the model pass INFO lines made this visible).
        """
        target = StreamTarget(StreamSpec("fdiv", ilp=ILP.MAX))
        once = run_targets([target])
        twice = run_targets([target,
                             StreamTarget(StreamSpec("fdiv", ilp=ILP.MAX))])
        assert len(once.findings) > 0
        assert len(twice.findings) == len(once.findings)
        assert twice.targets_checked == 2


class TestExitCodeThresholds:
    def test_default_fails_on_error_only(self):
        report = CheckReport()
        report.extend([_finding(severity=Severity.WARNING)])
        assert report.exit_code == 0
        assert report.exit_code_at(Severity.ERROR) == 0
        assert report.exit_code_at(Severity.WARNING) == 1
        assert report.exit_code_at(Severity.INFO) == 1

    def test_info_threshold_fails_on_anything(self):
        report = CheckReport()
        report.extend([_finding(severity=Severity.INFO)])
        assert report.exit_code_at(Severity.INFO) == 1
        assert report.exit_code_at(Severity.WARNING) == 0

    def test_clean_report_passes_every_threshold(self):
        report = CheckReport()
        for s in Severity:
            assert report.exit_code_at(s) == 0
