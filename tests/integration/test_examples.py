"""Smoke tests: the shipped examples must run and print sane output."""

import subprocess
import sys
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, *args, timeout=240):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        proc = run_example("quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "logical CPU 0" in proc.stdout
        assert "L2 read misses" in proc.stdout

    def test_sync_primitives(self):
        proc = run_example("sync_primitives.py")
        assert proc.returncode == 0, proc.stderr
        assert "halt + IPI" in proc.stdout
        assert "tradeoff" in proc.stdout

    def test_matmul_tlp_vs_spr(self):
        proc = run_example("matmul_tlp_vs_spr.py", "16")
        assert proc.returncode == 0, proc.stderr
        assert "delinquency profile" in proc.stdout
        assert "tlp-pfetch" in proc.stdout
