"""Fast integration checks of the headline paper shapes at small sizes.

The benchmark harness validates the full-size shapes; these tests keep
the most load-bearing ones under CI-speed guard (n=16 MM, small CG) so a
model regression is caught by ``pytest tests/`` alone.
"""

import pytest

from repro.core import run_app_experiment
from repro.workloads.common import Variant


@pytest.fixture(scope="module")
def mm16():
    variants = [Variant.SERIAL, Variant.TLP_COARSE, Variant.TLP_FINE,
                Variant.TLP_PFETCH, Variant.TLP_PFETCH_WORK]
    return {v: run_app_experiment("mm", v, {"n": 16}) for v in variants}


class TestMMHeadlines:
    def test_no_ht_speedup(self, mm16):
        """'HT technology did not provide any speedup' (fig 3a)."""
        serial = mm16[Variant.SERIAL].cycles
        for v, r in mm16.items():
            assert r.cycles >= serial * 0.97, v

    def test_pfetch_is_fastest_dual_method(self, mm16):
        serial = mm16[Variant.SERIAL].cycles
        duals = {v: r.cycles for v, r in mm16.items()
                 if v is not Variant.SERIAL}
        assert min(duals, key=duals.get) is Variant.TLP_PFETCH

    def test_pfetch_cuts_worker_misses(self, mm16):
        assert (mm16[Variant.TLP_PFETCH].l2_misses_worker
                < mm16[Variant.SERIAL].l2_misses)

    def test_fine_slower_than_coarse(self, mm16):
        assert (mm16[Variant.TLP_FINE].cycles
                > mm16[Variant.TLP_COARSE].cycles)

    def test_all_reference_checks(self, mm16):
        assert all(r.reference_ok for r in mm16.values())


class TestCGHeadlines:
    @pytest.fixture(scope="class")
    def cg(self):
        size = {"n": 128, "nnz_per_row": 16, "iterations": 2}
        return {
            v: run_app_experiment("cg", v, size)
            for v in (Variant.SERIAL, Variant.TLP_COARSE,
                      Variant.TLP_PFETCH)
        }

    def test_spr_slower_than_tlp(self, cg):
        """fig 5a ordering: prefetch methods well behind tlp-coarse."""
        assert (cg[Variant.TLP_PFETCH].cycles
                > cg[Variant.TLP_COARSE].cycles)

    def test_spr_uop_blowup(self, cg):
        """fig 5d: the prefetch method's µop increase."""
        assert cg[Variant.TLP_PFETCH].uops > 1.1 * cg[Variant.SERIAL].uops

    def test_spr_improves_worker_locality(self, cg):
        assert (cg[Variant.TLP_PFETCH].l2_misses_worker
                < cg[Variant.SERIAL].l2_misses)
