"""End-to-end coherence checks across the whole stack."""

import pytest

from repro.isa import Op
from repro.perfmon import Event
from repro.pintool import DryRunAPI
from repro.runtime import Program
from repro.workloads import matmul, lu, cg, bt
from repro.workloads.common import Variant


def run_build(build):
    prog = Program(aspace=build.aspace)
    for f in build.factories:
        prog.add_thread(f)
    return prog.run()


BUILDS = [
    ("mm", lambda: matmul.build(Variant.SERIAL, n=16)),
    ("lu", lambda: lu.build(Variant.SERIAL, n=16)),
    ("cg", lambda: cg.build(Variant.SERIAL, n=128, nnz_per_row=12,
                            iterations=1)),
    ("bt", lambda: bt.build(Variant.SERIAL, grid=4)),
]


class TestCounterCoherence:
    @pytest.mark.parametrize("name,make", BUILDS, ids=[b[0] for b in BUILDS])
    def test_counter_identities(self, name, make):
        """Invariants that must hold for any workload:

        * retired µops == emitted instructions;
        * L1 read accesses == number of load µops;
        * L2 accesses == L1 misses; L2 misses <= L2 accesses;
        * every executed load/store address falls inside a region.
        """
        build = make()
        # Count loads/stores functionally first (fresh build: the
        # functional state must not be consumed twice).
        probe = make()
        loads = stores = 0
        for instr in probe.factories[0](DryRunAPI(0)):
            if instr.op in (Op.ILOAD, Op.FLOAD):
                loads += 1
                assert probe.aspace.region_of(instr.addr) is not None
            elif instr.op in (Op.ISTORE, Op.FSTORE):
                stores += 1
                assert probe.aspace.region_of(instr.addr) is not None

        result = run_build(build)
        mon = result.monitor
        assert result.retired[0] == result.instrs[0]
        assert mon.read(Event.L1D_READ_ACCESS) == loads
        assert mon.read(Event.L1D_WRITE_ACCESS) == stores
        assert mon.read(Event.L2_READ_ACCESS) == mon.read(Event.L1D_READ_MISS)
        assert mon.read(Event.L2_READ_MISS) <= mon.read(Event.L2_READ_ACCESS)
        assert build.reference_check()

    def test_dual_thread_counters_split(self):
        build = matmul.build(Variant.TLP_COARSE, n=16)
        result = run_build(build)
        mon = result.monitor
        for tid in (0, 1):
            assert result.retired[tid] > 0
            assert mon.read(Event.UOPS_RETIRED, tid) == result.retired[tid]

    def test_cycles_active_positive(self):
        build = matmul.build(Variant.SERIAL, n=16)
        result = run_build(build)
        assert result.cycles > 0
        assert result.cpi() > 0.3  # cannot beat 3 µops/cycle fetch


class TestCrossVariantConsistency:
    def test_same_functional_answer_every_variant(self):
        """All MM variants compute the same C (different schedules)."""
        answers = []
        for v in (Variant.SERIAL, Variant.TLP_COARSE, Variant.TLP_PFETCH):
            build = matmul.build(v, n=16)
            run_build(build)
            assert build.reference_check()

    def test_uops_scale_with_problem_size(self):
        small = run_build(matmul.build(Variant.SERIAL, n=16))
        big = run_build(matmul.build(Variant.SERIAL, n=32))
        # n^3 work scaling: 8x the µops (within loop-overhead noise).
        assert sum(big.retired) == pytest.approx(8 * sum(small.retired),
                                                 rel=0.05)
