"""Tests for precomputation-span planning."""

import pytest
from hypothesis import given, strategies as st

from repro.common import ConfigError
from repro.mem import MemConfig
from repro.spr import plan_spans


class TestPlan:
    def test_default_fraction_is_quarter_l2(self):
        cfg = MemConfig()
        plan = plan_spans(total_items=1000, bytes_per_item=8, mem_config=cfg)
        assert plan.span_bytes <= cfg.l2_size // 4 + 8

    def test_fraction_window_enforced(self):
        """The paper's bound: 1/A <= fraction <= 1/2 (A = 8)."""
        plan_spans(10, 8, fraction=1 / 8)   # ok
        plan_spans(10, 8, fraction=1 / 2)   # ok
        with pytest.raises(ConfigError):
            plan_spans(10, 8, fraction=1 / 16)
        with pytest.raises(ConfigError):
            plan_spans(10, 8, fraction=0.75)

    def test_oversized_item_still_gets_a_span(self):
        cfg = MemConfig()
        plan = plan_spans(total_items=5, bytes_per_item=cfg.l2_size,
                          mem_config=cfg)
        assert plan.items_per_span == 1
        assert plan.num_spans == 5

    def test_span_of(self):
        plan = plan_spans(total_items=100, bytes_per_item=64)
        k = plan.items_per_span
        assert plan.span_of(0) == 0
        assert plan.span_of(k) == 1
        assert plan.span_of(k - 1) == 0

    def test_bad_inputs(self):
        with pytest.raises(ConfigError):
            plan_spans(0, 8)
        with pytest.raises(ConfigError):
            plan_spans(8, 0)

    def test_window_boundaries_exact(self):
        """Exactly 1/A and exactly 1/2 are legal (closed interval)."""
        cfg = MemConfig()
        lo = 1.0 / cfg.l2_assoc
        assert plan_spans(10, 8, mem_config=cfg, fraction=lo)
        assert plan_spans(10, 8, mem_config=cfg, fraction=0.5)

    def test_just_outside_window_rejected(self):
        cfg = MemConfig()
        lo = 1.0 / cfg.l2_assoc
        for bad in (lo * 0.999, 0.5 + 1e-9, 0.0, -0.25, 1.0):
            with pytest.raises(ConfigError):
                plan_spans(10, 8, mem_config=cfg, fraction=bad)

    def test_window_error_names_fraction_and_bounds(self):
        """The message carries the offending value and numeric window."""
        cfg = MemConfig()
        with pytest.raises(ConfigError) as exc:
            plan_spans(10, 8, mem_config=cfg, fraction=0.75)
        msg = str(exc.value)
        assert "0.75" in msg
        assert f"1/{cfg.l2_assoc}" in msg
        assert f"{1.0 / cfg.l2_assoc:.6g}" in msg
        assert "0.5" in msg

    def test_bad_geometry_errors_name_the_argument(self):
        with pytest.raises(ConfigError) as exc:
            plan_spans(-3, 8)
        assert "total_items" in str(exc.value) and "-3" in str(exc.value)
        with pytest.raises(ConfigError) as exc:
            plan_spans(8, -64)
        assert "bytes_per_item" in str(exc.value) and "-64" in str(exc.value)

    def test_lookahead_must_be_at_least_one(self):
        with pytest.raises(ConfigError) as exc:
            plan_spans(10, 8, lookahead=0)
        assert "lookahead" in str(exc.value)
        assert plan_spans(10, 8, lookahead=2).lookahead == 2


@given(
    total=st.integers(min_value=1, max_value=10_000),
    item_bytes=st.integers(min_value=1, max_value=4096),
)
def test_spans_cover_all_items_exactly(total, item_bytes):
    """Property: spans tile the item range with no gap or overlap."""
    plan = plan_spans(total, item_bytes)
    assert plan.items_per_span >= 1
    assert (plan.num_spans - 1) * plan.items_per_span < total
    assert plan.num_spans * plan.items_per_span >= total
    assert plan.span_of(total - 1) == plan.num_spans - 1
