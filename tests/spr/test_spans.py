"""Tests for precomputation-span planning."""

import pytest
from hypothesis import given, strategies as st

from repro.common import ConfigError
from repro.mem import MemConfig
from repro.spr import plan_spans


class TestPlan:
    def test_default_fraction_is_quarter_l2(self):
        cfg = MemConfig()
        plan = plan_spans(total_items=1000, bytes_per_item=8, mem_config=cfg)
        assert plan.span_bytes <= cfg.l2_size // 4 + 8

    def test_fraction_window_enforced(self):
        """The paper's bound: 1/A <= fraction <= 1/2 (A = 8)."""
        plan_spans(10, 8, fraction=1 / 8)   # ok
        plan_spans(10, 8, fraction=1 / 2)   # ok
        with pytest.raises(ConfigError):
            plan_spans(10, 8, fraction=1 / 16)
        with pytest.raises(ConfigError):
            plan_spans(10, 8, fraction=0.75)

    def test_oversized_item_still_gets_a_span(self):
        cfg = MemConfig()
        plan = plan_spans(total_items=5, bytes_per_item=cfg.l2_size,
                          mem_config=cfg)
        assert plan.items_per_span == 1
        assert plan.num_spans == 5

    def test_span_of(self):
        plan = plan_spans(total_items=100, bytes_per_item=64)
        k = plan.items_per_span
        assert plan.span_of(0) == 0
        assert plan.span_of(k) == 1
        assert plan.span_of(k - 1) == 0

    def test_bad_inputs(self):
        with pytest.raises(ConfigError):
            plan_spans(0, 8)
        with pytest.raises(ConfigError):
            plan_spans(8, 0)


@given(
    total=st.integers(min_value=1, max_value=10_000),
    item_bytes=st.integers(min_value=1, max_value=4096),
)
def test_spans_cover_all_items_exactly(total, item_bytes):
    """Property: spans tile the item range with no gap or overlap."""
    plan = plan_spans(total, item_bytes)
    assert plan.items_per_span >= 1
    assert (plan.num_spans - 1) * plan.items_per_span < total
    assert plan.num_spans * plan.items_per_span >= total
    assert plan.span_of(total - 1) == plan.num_spans - 1
