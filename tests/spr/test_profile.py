"""Tests for delinquent-load identification (the Valgrind stand-in)."""

import pytest

from repro.isa import Instr, F
from repro.mem import MemConfig
from repro.spr import find_delinquent_sites


def strided_loads(base, count, stride, site):
    return [
        Instr.load(base + i * stride, dst=F(0), site=site)
        for i in range(count)
    ]


class TestDelinquency:
    def test_missing_site_identified(self):
        # Site 1 strides through far memory (every access a new line and
        # far beyond L2); site 2 hammers one resident line.
        trace = []
        for i in range(300):
            trace.append(Instr.load(0x100000 + i * 4096, dst=F(0), site=1))
            trace.append(Instr.load(0x50, dst=F(1), site=2))
        report = find_delinquent_sites(iter(trace),
                                       MemConfig(prefetch_enabled=False))
        assert report.delinquent_sites == (1,)
        assert report.misses_by_site[1] == 300
        # Site 2 may have at most its one cold miss.
        assert report.misses_by_site.get(2, 0) <= 1
        assert report.coverage > 0.99

    def test_coverage_target_selects_top_sites(self):
        trace = (
            strided_loads(0x100000, 300, 4096, site=1)
            + strided_loads(0x900000, 30, 4096, site=2)
            + strided_loads(0xF00000, 5, 4096, site=3)
        )
        report = find_delinquent_sites(iter(trace), coverage_target=0.92)
        # Site 1 covers 300/335 = 89.5%; adding site 2 reaches 98.5%.
        assert report.delinquent_sites == (1, 2)
        assert report.coverage > 0.92

    def test_stores_do_not_count_as_read_misses(self):
        trace = [
            Instr.store(0x100000 + i * 4096, src=F(0), site=7)
            for i in range(50)
        ]
        report = find_delinquent_sites(iter(trace))
        assert report.total_l2_misses == 0
        assert report.delinquent_sites == ()

    def test_l2_hits_not_misses(self):
        # Second pass over a small set hits L2.
        base_trace = strided_loads(0x1000, 8, 32, site=5)
        trace = base_trace + strided_loads(0x1000, 8, 32, site=6)
        report = find_delinquent_sites(iter(trace),
                                       MemConfig(prefetch_enabled=False))
        assert 6 not in report.misses_by_site

    def test_bad_coverage_target(self):
        with pytest.raises(ValueError):
            find_delinquent_sites(iter([]), coverage_target=1.5)

    def test_empty_trace(self):
        report = find_delinquent_sites(iter([]))
        assert report.total_l2_misses == 0
        assert report.coverage == 0.0


class TestWorkloadDelinquency:
    def test_cg_gather_is_the_delinquent_load(self):
        """The profiler must discover that CG's p[col] gather (and the
        streamed CSR arrays) dominate its L2 misses — the paper's
        Valgrind step for irregular codes."""
        from repro.pintool import DryRunAPI
        from repro.workloads import cg
        from repro.workloads.common import Variant

        build = cg.build(Variant.SERIAL, n=224, nnz_per_row=40,
                         iterations=1)
        gen = build.factories[0](DryRunAPI(0))
        report = find_delinquent_sites(gen)
        assert report.total_l2_misses > 0
        assert report.coverage >= 0.92
