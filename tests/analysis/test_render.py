"""Tests for the ASCII renderers."""

from repro.analysis import (
    render_app_figure,
    render_fig1,
    render_fig2,
    render_table1,
)
from repro.core.apps import AppRunResult
from repro.core.coexec import CoexecResult
from repro.core.streams import StreamCPIResult
from repro.core.table1 import Table1Row
from repro.isa import ILP
from repro.workloads.common import Variant


def fake_stream(stream="fadd", threads=1, ilp=ILP.MAX, cpi=1.0):
    return StreamCPIResult(stream=stream, ilp=ilp, threads=threads,
                           cpi=cpi, cumulative_ipc=1 / cpi, cycles=1000,
                           instrs_per_thread=100)


def fake_app(variant, cycles, app="mm"):
    return AppRunResult(app=app, variant=variant, size={"n": 16},
                        cycles=cycles, l2_misses=10, l2_misses_total=12,
                        l2_misses_worker=10, stall_cycles=5, uops=100,
                        uops_per_thread=(60, 40), reference_ok=True)


class TestRenderers:
    def test_fig1_contains_all_modes(self):
        results = [
            fake_stream(threads=t, ilp=i)
            for t in (1, 2)
            for i in ILP
        ]
        out = render_fig1(results)
        assert "1thr-minILP" in out and "2thr-maxILP" in out
        assert "fadd" in out

    def test_fig2_matrix_symmetric_cells(self):
        r = CoexecResult(stream_a="fadd", stream_b="fmul", ilp=ILP.MAX,
                         cpi_a=2.0, cpi_b=4.0, solo_cpi_a=1.0,
                         solo_cpi_b=2.0)
        out = render_fig2([r], "test")
        assert "fadd" in out and "fmul" in out
        assert "2.00" in out  # both slowdowns are 2.0

    def test_app_figure_relative_column(self):
        results = [fake_app(Variant.SERIAL, 1000),
                   fake_app(Variant.TLP_COARSE, 1500)]
        out = render_app_figure(results)
        assert "1.50" in out
        assert "serial" in out and "tlp-coarse" in out

    def test_app_figure_empty(self):
        assert "no results" in render_app_figure([])

    def test_table1_layout(self):
        rows = [Table1Row(app="mm", column="serial",
                          percentages={"ALUS": 27.0, "LOAD": 38.0},
                          total_instructions=1234)]
        out = render_table1(rows)
        assert "ALUS" in out and "1234" in out and "27.00" in out
