"""Tests for the shape-expectation checker (with synthetic results)."""

from repro.analysis import check_app_shapes
from repro.core.apps import AppRunResult
from repro.workloads.common import Variant


def result(variant, cycles, app="mm", misses=100, worker=100, stalls=0,
           uops=1000):
    return AppRunResult(app=app, variant=variant, size={"n": 16},
                        cycles=cycles, l2_misses=misses,
                        l2_misses_total=misses, l2_misses_worker=worker,
                        stall_cycles=stalls, uops=uops,
                        uops_per_thread=(uops,), reference_ok=True)


def paper_perfect_mm():
    """Synthetic results that match the paper's fig-3 numbers exactly."""
    return [
        result(Variant.SERIAL, 1000, misses=100, worker=100),
        result(Variant.TLP_PFETCH, 1005, misses=18, worker=18),
        result(Variant.TLP_COARSE, 1120, misses=95, worker=50),
        result(Variant.TLP_FINE, 1340, misses=95, worker=50),
        result(Variant.TLP_PFETCH_WORK, 1580, misses=95, worker=50),
    ]


class TestMMChecks:
    def test_paper_numbers_pass(self):
        checks = check_app_shapes("mm", paper_perfect_mm())
        assert checks
        assert all(c.holds for c in checks), [str(c) for c in checks]

    def test_ht_speedup_detected_as_miss(self):
        results = paper_perfect_mm()
        results[2] = result(Variant.TLP_COARSE, 700)  # speedup: wrong
        checks = check_app_shapes("mm", results)
        assert any(not c.holds for c in checks)

    def test_expectation_str(self):
        checks = check_app_shapes("mm", paper_perfect_mm())
        s = str(checks[0])
        assert "PASS" in s or "MISS" in s
        assert "fig3" in s


class TestOtherApps:
    def test_lu_paper_numbers_pass(self):
        results = [
            result(Variant.SERIAL, 1000, app="lu", misses=100, worker=100,
                   stalls=10, uops=1000),
            result(Variant.TLP_COARSE, 950, app="lu", misses=80, worker=40,
                   stalls=500, uops=1050),
            result(Variant.TLP_PFETCH, 1800, app="lu", misses=2, worker=2,
                   stalls=300, uops=2100),
        ]
        checks = check_app_shapes("lu", results)
        assert all(c.holds for c in checks), [str(c) for c in checks]

    def test_bt_paper_numbers_pass(self):
        results = [
            result(Variant.SERIAL, 1000, app="bt", misses=100, worker=100),
            result(Variant.TLP_COARSE, 940, app="bt", misses=90, worker=45,
                   stalls=100),
            result(Variant.TLP_PFETCH, 1010, app="bt", misses=30, worker=30,
                   stalls=50, uops=1200),
        ]
        checks = check_app_shapes("bt", results)
        assert all(c.holds for c in checks), [str(c) for c in checks]

    def test_cg_paper_numbers_pass(self):
        results = [
            result(Variant.SERIAL, 1000, app="cg", misses=100, worker=100,
                   stalls=50, uops=1000),
            result(Variant.TLP_COARSE, 1030, app="cg", misses=80, worker=40,
                   stalls=55, uops=1180),
            result(Variant.TLP_PFETCH, 1820, app="cg", misses=20, worker=20,
                   stalls=50, uops=1500),
            result(Variant.TLP_PFETCH_WORK, 1910, app="cg", misses=85,
                   worker=45, stalls=60, uops=1600),
        ]
        checks = check_app_shapes("cg", results)
        assert all(c.holds for c in checks), [str(c) for c in checks]
