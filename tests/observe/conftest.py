"""Shared helpers: build a core with observe hooks attached."""

from repro.cpu import CoreConfig, SMTCore
from repro.mem import MemConfig, MemoryHierarchy
from repro.perfmon import PerfMonitor


def make_core(config=None, mem=None, tracer=None, accountant=None):
    cfg = config or CoreConfig()
    mon = PerfMonitor(cfg.num_threads)
    hier = MemoryHierarchy(mem or MemConfig(), mon, cfg.num_threads)
    return SMTCore(cfg, hier, mon, tracer=tracer, accountant=accountant)


def run_program(thread_instrs, config=None, tracer=None, accountant=None):
    """Run lists of instruction lists (one per thread) to completion."""
    core = make_core(config=config, tracer=tracer, accountant=accountant)
    for instrs in thread_instrs:
        core.add_thread(iter(instrs))
    return core, core.run()
