"""Cycle accountant: slot conservation and stall attribution."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import run_app_experiment
from repro.isa import F, Instr, Op, R
from repro.observe import (
    ALLOC_CATEGORIES,
    ISSUE_CATEGORIES,
    CycleAccountant,
)
from repro.observe import accountant as acc
from repro.workloads.common import Variant

from tests.observe.conftest import run_program

_OPS = ("iadd", "fadd", "fmul", "fdiv", "load", "store")


def _instr(kind: str, i: int) -> Instr:
    if kind == "iadd":
        return Instr.arith(Op.IADD, dst=R(i % 4), src=R(8))
    if kind == "fadd":
        return Instr.arith(Op.FADD, dst=F(i % 6), src=F(8))
    if kind == "fmul":
        return Instr.arith(Op.FMUL, dst=F(i % 6), src=F(8))
    if kind == "fdiv":
        return Instr.arith(Op.FDIV, dst=F(i % 6), src=F(8))
    if kind == "load":
        return Instr.load(0x200 + 32 * (i % 16), dst=F(7))
    return Instr.store(0x80 + 32 * (i % 4), src=F(0))


def _check_exact_conservation(accountant, core, result):
    """The ledger identity: every thread is offered every slot of every
    accounted event — fast-forwarded gaps included — and the category
    counts decompose those slots without loss."""
    cfg = core.config
    ticks = result.ticks
    boundaries = (ticks + 1) // 2
    assert accountant.check_conservation()
    for tid in range(len(core.threads)):
        assert accountant.issue.slots[tid] == cfg.issue_width * ticks
        assert accountant.alloc.slots[tid] == cfg.alloc_width * boundaries
        assert set(accountant.alloc.counts[tid]) <= set(ALLOC_CATEGORIES)
        assert set(accountant.issue.counts[tid]) <= set(ISSUE_CATEGORIES)


class TestConservation:
    @settings(max_examples=25, deadline=None)
    @given(
        programs=st.lists(
            st.lists(st.sampled_from(_OPS), min_size=1, max_size=50),
            min_size=1, max_size=2,
        )
    )
    def test_slots_conserved_for_random_programs(self, programs):
        accountant = CycleAccountant()
        core, result = run_program(
            [[_instr(k, i) for i, k in enumerate(kinds)]
             for kinds in programs],
            accountant=accountant,
        )
        _check_exact_conservation(accountant, core, result)

    def test_fast_forward_gaps_are_accounted(self):
        """A serial FDIV chain spends most ticks provably idle; the
        core fast-forwards them, and the accountant must bill every
        skipped slot (here to the divider / RAW wait)."""
        accountant = CycleAccountant()
        core, result = run_program(
            [[_instr("fdiv", 0) for _ in range(30)]],
            accountant=accountant,
        )
        _check_exact_conservation(accountant, core, result)
        stalls = dict(accountant.issue.dominant_stalls(0, 4))
        assert acc.RAW_WAIT in stalls or (acc.UNIT_BUSY + "fpdiv") in stalls

    def test_single_thread_sibling_free(self):
        accountant = CycleAccountant()
        core, result = run_program(
            [[_instr("iadd", i) for i in range(60)]],
            accountant=accountant,
        )
        _check_exact_conservation(accountant, core, result)
        assert acc.SIBLING not in accountant.issue.counts[0]
        assert accountant.issue.counts[0][acc.USEFUL] == 60

    def test_two_threads_see_each_other(self):
        accountant = CycleAccountant()
        core, result = run_program(
            [[_instr("iadd", i) for i in range(80)],
             [_instr("fadd", i) for i in range(80)]],
            accountant=accountant,
        )
        _check_exact_conservation(accountant, core, result)
        for tid in (0, 1):
            assert accountant.issue.counts[tid][acc.USEFUL] == 80
            assert accountant.issue.counts[tid][acc.SIBLING] == 80


class TestAttribution:
    def test_drained_thread_is_billed_drained(self):
        accountant = CycleAccountant()
        run_program(
            [[_instr("iadd", i) for i in range(4)],
             [_instr("fdiv", i) for i in range(20)]],
            accountant=accountant,
        )
        # Thread 0 finishes almost immediately; its remaining slots are
        # either donated to the divider thread or billed 'drained'.
        counts = accountant.issue.counts[0]
        assert counts[acc.DRAINED] > counts.get(acc.USEFUL, 0)

    def test_to_dict_round_trip(self):
        accountant = CycleAccountant()
        run_program([[_instr("fadd", i) for i in range(30)]],
                    accountant=accountant)
        d = accountant.to_dict()
        for kind in ("alloc", "issue"):
            for row in d[kind]["per_thread"]:
                assert sum(row["categories"].values()) == row["total_slots"]


class TestPaperMechanisms:
    def test_mm_tlp_coarse_dominant_stalls(self):
        """Fig. 3's loser: the breakdown must name the paper's §2
        mechanisms — partitioned-queue allocate stalls (ROB/store
        buffer) and shared-subunit issue serialization — as the
        dominant non-useful slots."""
        accountant = CycleAccountant()
        run_app_experiment("mm", Variant.TLP_COARSE, {"n": 16},
                           accountant=accountant)
        _check = accountant.check_conservation()
        assert _check
        for tid in (0, 1):
            alloc_top = accountant.alloc.dominant_stalls(tid, 1)
            assert alloc_top[0][0] in (acc.ROB_STALLED, acc.SQ_STALLED,
                                       acc.LQ_STALLED), alloc_top
            # The paper's store-buffer resource stall is visible in the
            # allocate ledger (it dominates only at sizes where the SQ
            # half fills faster than it drains).
            assert accountant.alloc.counts[tid].get(acc.SQ_STALLED, 0) > 0
            issue_top = accountant.issue.dominant_stalls(tid, 1)
            assert issue_top[0][0].startswith(acc.UNIT_BUSY), issue_top
