"""Pipeline tracer: zero-overhead default, recording, exports."""

import json

from repro.isa import F, Instr, Op, R
from repro.observe import NULL_TRACER, NullTracer, PipelineTracer
from repro.observe.tracer import STAGES

from tests.observe.conftest import run_program


def _mixed_program(n=40):
    instrs = []
    for i in range(n):
        instrs.append(Instr.arith(Op.IADD, dst=R(i % 4), src=R(8), site=1))
        instrs.append(Instr.arith(Op.FADD, dst=F(i % 6), src=F(8), site=2))
        instrs.append(Instr.load(0x100 + 32 * (i % 8), dst=F(7), site=3))
    instrs.append(Instr.store(0x40, src=F(7), site=4))
    return instrs


class TestNullTracer:
    def test_disabled(self):
        assert NullTracer.enabled is False
        assert NULL_TRACER.enabled is False

    def test_core_caches_no_hook(self):
        """With tracing off, the core's hot-loop slot is None — the
        per-µop cost of disabled tracing is literally zero calls."""
        core, _ = run_program([_mixed_program(5)])
        assert core.tracer is NULL_TRACER
        assert core._tr is None
        traced = PipelineTracer()
        core2, _ = run_program([_mixed_program(5)], tracer=traced)
        assert core2._tr is traced

    def test_identity_with_and_without_tracing(self):
        """Tracing observes the machine; it must not perturb it."""
        program = _mixed_program
        _, base = run_program([program()])
        _, null = run_program([program()], tracer=NullTracer())
        _, traced = run_program([program()], tracer=PipelineTracer())
        assert null.ticks == base.ticks == traced.ticks
        assert null.retired == base.retired == traced.retired


class TestPipelineTracer:
    def test_every_stage_recorded_per_uop(self):
        tracer = PipelineTracer()
        _, result = run_program([_mixed_program(20)], tracer=tracer)
        n = result.retired[0]
        by_stage = {}
        for ev in tracer.events:
            by_stage.setdefault(ev.stage, []).append(ev)
        for stage in STAGES:
            assert len(by_stage[stage]) == n, stage
        # The store drains after retirement.
        assert len(by_stage["drain"]) == 1

    def test_stage_order_per_uop(self):
        tracer = PipelineTracer()
        run_program([_mixed_program(10)], tracer=tracer)
        ticks = {}
        for ev in tracer.events:
            if ev.seq >= 0 and ev.stage in STAGES:
                ticks.setdefault(ev.seq, {})[ev.stage] = ev.tick
        for seq, stages in ticks.items():
            assert (stages["fetch"] <= stages["alloc"] <= stages["issue"]
                    <= stages["complete"] <= stages["retire"]), seq

    def test_limit_truncates(self):
        tracer = PipelineTracer(limit=10)
        run_program([_mixed_program(20)], tracer=tracer)
        assert len(tracer.events) == 10
        assert tracer.truncated

    def test_jsonl_export(self, tmp_path):
        tracer = PipelineTracer()
        run_program([_mixed_program(5)], tracer=tracer)
        path = str(tmp_path / "trace.jsonl")
        n = tracer.to_jsonl(path)
        lines = open(path).read().splitlines()
        assert len(lines) == n == len(tracer.events)
        first = json.loads(lines[0])
        assert {"tick", "cpu", "stage", "op", "seq", "site"} <= set(first)


class TestChromeTrace:
    def test_required_keys(self, tmp_path):
        """Every event carries the trace_event viewer's required keys."""
        tracer = PipelineTracer()
        run_program([_mixed_program(10), _mixed_program(10)], tracer=tracer)
        path = str(tmp_path / "trace.json")
        tracer.to_chrome(path)
        doc = json.load(open(path))
        events = doc["traceEvents"]
        assert events
        for ev in events:
            assert {"name", "ph", "pid", "tid"} <= set(ev), ev
            if ev["ph"] == "X":
                assert "ts" in ev and ev["dur"] >= 1, ev
            elif ev["ph"] == "i":
                assert "ts" in ev and ev["s"] == "t", ev

    def test_one_track_per_cpu_stage(self):
        tracer = PipelineTracer()
        run_program([_mixed_program(10), _mixed_program(10)], tracer=tracer)
        doc = tracer.chrome_trace()
        names = {ev["args"]["name"] for ev in doc["traceEvents"]
                 if ev["ph"] == "M" and ev["name"] == "thread_name"}
        for cpu in (0, 1):
            for stage in STAGES + ("machine",):
                assert f"cpu{cpu} {stage}" in names
        # Distinct (cpu, stage) pairs land on distinct tids.
        tids = {ev["tid"] for ev in doc["traceEvents"]
                if ev["ph"] == "M" and ev["name"] == "thread_name"}
        assert len(tids) == len(names)

    def test_slices_span_to_next_stage(self):
        tracer = PipelineTracer()
        run_program([_mixed_program(5)], tracer=tracer)
        doc = tracer.chrome_trace()
        # Pick one µop's issue slice; it must end at its complete tick.
        stage_tick = {}
        for ev in tracer.events:
            if ev.seq == 0 and ev.stage in STAGES:
                stage_tick[ev.stage] = ev.tick
        issue_slices = [ev for ev in doc["traceEvents"]
                        if ev["ph"] == "X" and ev.get("args", {}).get("seq") == 0
                        and ev["ts"] == stage_tick["issue"]]
        spans = {ev["ts"] + ev["dur"] for ev in issue_slices}
        assert max(stage_tick["complete"], stage_tick["issue"] + 1) in spans
