"""Structured run reports: schema, serialization, file round-trip."""

import json

import pytest

from repro.core import run_app_experiment
from repro.cpu.config import CoreConfig
from repro.mem.config import MemConfig
from repro.observe import (
    SCHEMA_VERSION,
    CycleAccountant,
    SiteMissProfile,
    build_report,
    result_to_dict,
    write_report,
)
from repro.workloads.common import Variant


@pytest.fixture(scope="module")
def small_run():
    accountant = CycleAccountant()
    profiler = SiteMissProfile()
    result = run_app_experiment("mm", Variant.SERIAL, {"n": 16},
                                accountant=accountant, profiler=profiler)
    return result, accountant, profiler


class TestResultToDict:
    def test_app_result_serializes(self, small_run):
        result, _, _ = small_run
        d = result_to_dict(result)
        assert d["app"] == "mm"
        assert d["variant"] == "serial"          # enum -> value
        assert d["size"] == {"n": 16}
        assert isinstance(d["uops_per_thread"], list)
        json.dumps(d)                            # JSON-clean throughout

    def test_non_dataclass_wrapped(self):
        assert result_to_dict(42) == {"value": 42}


class TestBuildReport:
    def test_manifest_layout(self, small_run):
        result, accountant, profiler = small_run
        report = build_report(
            "app-mm", result, core_config=CoreConfig(),
            mem_config=MemConfig(), counters=result.counters,
            accountant=accountant, heatmap=profiler,
            wall_time_s=result.wall_time_s, extra={"variant": "serial"},
        )
        assert report["schema_version"] == SCHEMA_VERSION
        assert report["kind"] == "app-mm"
        assert report["config"]["core"]["num_threads"] == 2
        assert report["config"]["mem"]["line_size"] == MemConfig().line_size
        assert len(report["results"]) == 1
        assert report["variant"] == "serial"
        assert "UOPS_RETIRED" in report["counters"]
        heat = report["l2_miss_heatmap"]
        assert heat["total_l2_read_misses"] == profiler.total

    def test_stall_breakdown_conserved_in_report(self, small_run):
        """The acceptance identity, checked on the serialized form:
        every per-thread row sums to that thread's total slots."""
        result, accountant, _ = small_run
        report = build_report("app-mm", result, accountant=accountant)
        for kind in ("alloc", "issue"):
            for row in report["stall_breakdown"][kind]["per_thread"]:
                assert sum(row["categories"].values()) == row["total_slots"]

    def test_results_list_passthrough(self):
        report = build_report("x", [1, 2])
        assert report["results"] == [{"value": 1}, {"value": 2}]

    def test_write_report_round_trip(self, tmp_path, small_run):
        result, accountant, profiler = small_run
        report = build_report("app-mm", result, accountant=accountant,
                              heatmap=profiler)
        path = str(tmp_path / "report.json")
        write_report(report, path)
        loaded = json.load(open(path))
        assert loaded == json.loads(json.dumps(report))
