"""Regression: the tick an in-flight effect observes is pinned.

Mid-cycle effects (sync sampling, the §4 measurement markers) read
``core.tick``; the runtime keeps it equal to the tick being simulated.
The tracer records stage timestamps independently, so the two views
must agree exactly — this pins the observable clock against future
run-loop reorderings.
"""

from repro.isa import F, Instr, Op
from repro.observe import PipelineTracer

from tests.observe.conftest import make_core


class TestEffectTickVisibility:
    def test_effect_sees_completion_tick(self):
        """A non-store effect fires at completion and must observe the
        same tick the tracer stamps on the µop's complete event."""
        tracer = PipelineTracer()
        core = make_core(tracer=tracer)
        seen = {}

        def program(n=20):
            instrs = []
            for i in range(n):
                instrs.append(Instr.arith(Op.FADD, dst=F(i % 6), src=F(8)))

            def snap(idx=n):
                seen["tick"] = core.tick

            instrs.append(Instr.arith(Op.FADD, dst=F(0), src=F(8),
                                      effect=snap, site=99))
            return instrs

        core.add_thread(iter(program()))
        core.run()
        completes = [ev for ev in tracer.events
                     if ev.stage == "complete" and ev.site == 99]
        assert len(completes) == 1
        assert seen["tick"] == completes[0].tick

    def test_store_effect_sees_retire_tick(self):
        """Store effects fire at retirement (program order commit)."""
        tracer = PipelineTracer()
        core = make_core(tracer=tracer)
        seen = {}

        def snap():
            seen["tick"] = core.tick

        instrs = [Instr.arith(Op.FADD, dst=F(0), src=F(8))
                  for _ in range(5)]
        instrs.append(Instr.store(0x40, src=F(0), effect=snap, site=77))
        core.add_thread(iter(instrs))
        core.run()
        retires = [ev for ev in tracer.events
                   if ev.stage == "retire" and ev.site == 77]
        assert len(retires) == 1
        assert seen["tick"] == retires[0].tick

    def test_tick_monotonic_in_trace(self):
        tracer = PipelineTracer()
        core = make_core(tracer=tracer)
        core.add_thread(iter(
            [Instr.arith(Op.FADD, dst=F(i % 6), src=F(8))
             for i in range(50)]
        ))
        result = core.run()
        assert all(0 <= ev.tick <= result.ticks for ev in tracer.events)
