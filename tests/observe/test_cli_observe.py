"""CLI observability flags: --report, --json, --trace."""

import json

from repro.cli import main
from repro.observe import SCHEMA_VERSION


class TestReportFlag:
    def test_app_report_file(self, tmp_path, capsys):
        path = str(tmp_path / "r.json")
        assert main(["app", "mm", "--variant", "serial", "--size", "16",
                     "--report", path]) == 0
        out = capsys.readouterr().out
        assert "Stall breakdown" in out       # ASCII still rendered
        report = json.load(open(path))
        assert report["schema_version"] == SCHEMA_VERSION
        assert report["kind"] == "app-mm"
        for kind in ("alloc", "issue"):
            for row in report["stall_breakdown"][kind]["per_thread"]:
                assert sum(row["categories"].values()) == row["total_slots"]

    def test_stream_report(self, tmp_path):
        path = str(tmp_path / "s.json")
        assert main(["stream", "iadd", "--report", path]) == 0
        report = json.load(open(path))
        assert report["kind"] == "stream"
        assert report["results"][0]["stream"] == "iadd"
        assert "stall_breakdown" in report


class TestJsonFlag:
    def test_app_json_replaces_ascii(self, capsys):
        assert main(["app", "mm", "--variant", "serial", "--size", "16",
                     "--json"]) == 0
        out = capsys.readouterr().out
        report = json.loads(out)              # pure JSON, no rendering
        assert report["schema_version"] == SCHEMA_VERSION
        assert report["results"][0]["app"] == "mm"

    def test_stream_json(self, capsys):
        assert main(["stream", "fadd", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["results"][0]["stream"] == "fadd"


class TestTraceFlag:
    def test_app_trace_file(self, tmp_path):
        path = str(tmp_path / "t.json")
        assert main(["app", "mm", "--variant", "serial", "--size", "16",
                     "--trace", path, "--trace-limit", "5000"]) == 0
        doc = json.load(open(path))
        events = doc["traceEvents"]
        assert events
        for ev in events:
            assert {"name", "ph", "pid", "tid"} <= set(ev)
        assert doc["otherData"]["truncated"] is True

    def test_sweep_trace_rejected(self, capsys):
        assert main(["app", "mm", "--size", "16", "--trace", "t.json"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error:")
        assert "--variant" in err
